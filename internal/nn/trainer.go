package nn

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"autoview/internal/obs"
)

// Trainer metrics: samples and steps always count; the nn.train.step and
// nn.train.reduce spans (and the samples/s gauge) are recorded only when
// the obs registry is enabled, so the hot loop pays no clock reads
// otherwise.
var (
	obsTrainSamples = obs.Default.Counter("nn.train.samples", "training samples processed (forward+backward)")
	obsTrainSteps   = obs.Default.Counter("nn.train.steps", "mini-batch gradient steps")
	obsTrainRate    = obs.Default.Gauge("nn.train.samples_per_sec", "throughput of the last mini-batch step")
)

// SampleFunc computes forward+backward for sample i of the current
// mini-batch, accumulating parameter gradients into the replica it is
// bound to, and returns the sample's (un-averaged) loss contribution.
// The index i addresses the batch the caller staged before Step; the
// function must not touch the canonical parameters' gradients.
type SampleFunc func(i int) float64

// BindFunc builds one worker-local model replica: a parameter list whose
// entries share weight (Val) storage with the trainer's canonical
// parameters — same order, same shapes — but own private gradient
// buffers, plus the per-sample forward+backward runner bound to those
// replica parameters. Layers expose ShareWeights constructors for this;
// BindFunc is called once per worker at trainer construction.
type BindFunc func() (replica []*Param, run SampleFunc)

// Trainer shards mini-batch gradient computation across workers. Each
// sample's gradient is computed into a zeroed worker-private buffer and
// reduced into the canonical gradients strictly in sample order, so the
// result is bit-for-bit identical for every Parallelism setting: the
// floating-point operation sequence per sample is fixed (forward reads
// only the shared weights, which are frozen during Step), and the
// reduction order is fixed by sample index, not by worker scheduling.
//
// Parallelism 1 therefore reproduces the multi-worker result exactly and
// runs inline without spawning goroutines.
type Trainer struct {
	params  []*Param
	workers []trainWorker
	losses  []float64
}

type trainWorker struct {
	replica []*Param
	run     SampleFunc
}

// NewTrainer builds a trainer over the canonical parameters. parallelism
// ≤ 0 selects runtime.NumCPU(). bind is invoked once per worker and must
// return replicas aligned index-for-index with params.
func NewTrainer(params []*Param, parallelism int, bind BindFunc) *Trainer {
	if parallelism <= 0 {
		parallelism = runtime.NumCPU()
	}
	t := &Trainer{params: params, losses: make([]float64, parallelism)}
	for w := 0; w < parallelism; w++ {
		replica, run := bind()
		if len(replica) != len(params) {
			panic(fmt.Sprintf("nn: trainer replica has %d params, want %d", len(replica), len(params)))
		}
		for i, p := range replica {
			if p.Size() != params[i].Size() {
				panic(fmt.Sprintf("nn: trainer replica param %d (%s) has size %d, want %d",
					i, p, p.Size(), params[i].Size()))
			}
		}
		t.workers = append(t.workers, trainWorker{replica: replica, run: run})
	}
	return t
}

// Parallelism returns the number of workers.
func (t *Trainer) Parallelism() int { return len(t.workers) }

// Step zeroes the canonical gradients, computes the gradient of every
// sample in the batch of size n, reduces them in sample order, and
// returns the summed per-sample losses (also accumulated in sample
// order). The caller applies the optimizer afterwards.
func (t *Trainer) Step(n int) float64 {
	timing := obs.Enabled()
	var stepStart time.Time
	var reduceDur time.Duration
	if timing {
		stepStart = time.Now()
	}
	ZeroGrads(t.params)
	var total float64
	p := len(t.workers)
	// The batch runs in waves of up to p samples: worker w computes
	// sample base+w, then the wave's buffers merge in worker (= sample)
	// order. The wave structure only controls scheduling — the reduce
	// sequence is the same for every p.
	for base := 0; base < n; base += p {
		k := p
		if base+k > n {
			k = n - base
		}
		if k == 1 || p == 1 {
			for w := 0; w < k; w++ {
				t.runSample(w, base+w)
			}
		} else {
			var wg sync.WaitGroup
			for w := 0; w < k; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					t.runSample(w, base+w)
				}(w)
			}
			wg.Wait()
		}
		var reduceStart time.Time
		if timing {
			reduceStart = time.Now()
		}
		for w := 0; w < k; w++ {
			for pi, p := range t.params {
				addInto(p.Grad, t.workers[w].replica[pi].Grad)
			}
			total += t.losses[w]
		}
		if timing {
			reduceDur += time.Since(reduceStart)
		}
	}
	obsTrainSamples.Add(int64(n))
	obsTrainSteps.Inc()
	if timing {
		stepDur := time.Since(stepStart)
		obs.Default.ObserveSpan("nn.train.step", stepDur)
		obs.Default.ObserveSpan("nn.train.reduce", reduceDur)
		if s := stepDur.Seconds(); s > 0 {
			obsTrainRate.Set(float64(n) / s)
		}
	}
	return total
}

// runSample computes sample i's loss and gradient on worker w.
func (t *Trainer) runSample(w, i int) {
	wk := t.workers[w]
	ZeroGrads(wk.replica)
	t.losses[w] = wk.run(i)
}
