package nn

import (
	"math"
	"math/rand"
	"testing"
)

// trainerFixture is a small supervised regression problem: an MLP with
// ReLU hiddens fitted by SGD, all in pure rational arithmetic (no
// transcendental activations), so loss traces are reproducible bit-for-bit
// across platforms.
type trainerFixture struct {
	mlp     *MLP
	samples []Vec
	targets []float64
}

func newTrainerFixture(seed int64) *trainerFixture {
	rng := rand.New(rand.NewSource(seed))
	f := &trainerFixture{mlp: NewMLP("fix", []int{4, 8, 8, 1}, rng)}
	for i := 0; i < 32; i++ {
		x := make(Vec, 4)
		for j := range x {
			x[j] = rng.Float64()*2 - 1
		}
		f.samples = append(f.samples, x)
		f.targets = append(f.targets, 2*x[0]-x[1]+0.5*x[2]*x[3])
	}
	return f
}

// train runs `steps` mini-batch SGD steps at the given parallelism,
// cycling through the dataset in fixed batches of 8, and returns the
// per-step summed batch losses.
func (f *trainerFixture) train(t *testing.T, parallelism, steps int) []float64 {
	t.Helper()
	params := f.mlp.Params()
	const B = 8
	var batch []int
	trainer := NewTrainer(params, parallelism, func() ([]*Param, SampleFunc) {
		rep := f.mlp.ShareWeights()
		run := func(i int) float64 {
			s := batch[i]
			y, back := rep.Forward(f.samples[s])
			d := y[0] - f.targets[s]
			back(Vec{2 * d / B})
			return d * d
		}
		return rep.Params(), run
	})
	opt := &SGD{LR: 0.05}
	trace := make([]float64, 0, steps)
	for step := 0; step < steps; step++ {
		start := (step * B) % len(f.samples)
		batch = batch[:0]
		for i := 0; i < B; i++ {
			batch = append(batch, (start+i)%len(f.samples))
		}
		trace = append(trace, trainer.Step(B))
		opt.Step(params)
	}
	return trace
}

func (f *trainerFixture) weights() []float64 {
	var out []float64
	for _, p := range f.mlp.Params() {
		out = append(out, p.Val...)
	}
	return out
}

// TestTrainerBitwiseDeterminism trains the same model 50 steps from the
// same seed at parallelism 1, 3 and 8: final weights and loss traces must
// be identical bit-for-bit, because each sample's gradient is computed
// from a zeroed buffer and reduced in sample order regardless of worker
// count.
func TestTrainerBitwiseDeterminism(t *testing.T) {
	ref := newTrainerFixture(42)
	refTrace := ref.train(t, 1, 50)
	refW := ref.weights()
	for _, p := range []int{3, 8} {
		f := newTrainerFixture(42)
		trace := f.train(t, p, 50)
		for i := range refTrace {
			if trace[i] != refTrace[i] {
				t.Fatalf("parallelism %d: loss[%d] = %.17g, serial %.17g", p, i, trace[i], refTrace[i])
			}
		}
		w := f.weights()
		for i := range refW {
			if w[i] != refW[i] {
				t.Fatalf("parallelism %d: weight[%d] = %.17g, serial %.17g", p, i, w[i], refW[i])
			}
		}
	}
}

// TestTrainerMatchesDirectBackprop checks the replica plumbing: one
// trainer step must produce the same gradients as the classic serial
// loop accumulating directly into the canonical parameters (up to
// floating-point associativity of the cross-sample sums).
func TestTrainerMatchesDirectBackprop(t *testing.T) {
	f := newTrainerFixture(7)
	params := f.mlp.Params()
	const B = 8
	batch := []int{0, 1, 2, 3, 4, 5, 6, 7}

	trainer := NewTrainer(params, 4, func() ([]*Param, SampleFunc) {
		rep := f.mlp.ShareWeights()
		run := func(i int) float64 {
			s := batch[i]
			y, back := rep.Forward(f.samples[s])
			d := y[0] - f.targets[s]
			back(Vec{2 * d / B})
			return d * d
		}
		return rep.Params(), run
	})
	gotLoss := trainer.Step(B)
	got := make([][]float64, len(params))
	for i, p := range params {
		got[i] = append([]float64(nil), p.Grad...)
	}

	ZeroGrads(params)
	var wantLoss float64
	for _, s := range batch {
		y, back := f.mlp.Forward(f.samples[s])
		d := y[0] - f.targets[s]
		wantLoss += d * d
		back(Vec{2 * d / B})
	}
	if math.Abs(gotLoss-wantLoss) > 1e-12*(1+math.Abs(wantLoss)) {
		t.Errorf("trainer loss %g, direct loss %g", gotLoss, wantLoss)
	}
	for i, p := range params {
		for j := range p.Grad {
			if math.Abs(got[i][j]-p.Grad[j]) > 1e-12*(1+math.Abs(p.Grad[j])) {
				t.Errorf("%s grad[%d]: trainer %g, direct %g", p, j, got[i][j], p.Grad[j])
			}
		}
	}
}

// TestTrainerGoldenLossTrace pins the serial training path to a recorded
// loss trace. The fixture uses only rational arithmetic (ReLU MLP, MSE,
// plain SGD), so any drift means the numerics of the trainer, the layers,
// or the optimizer changed.
func TestTrainerGoldenLossTrace(t *testing.T) {
	f := newTrainerFixture(42)
	trace := f.train(t, 1, 50)
	golden := map[int]float64{
		0:  11.924137636086254,
		9:  9.896795720891852,
		19: 4.1377847243217003,
		29: 1.3500826905422696,
		39: 1.2622011903368016,
		49: 0.54739776165529452,
	}
	for step, want := range golden {
		if got := trace[step]; got != want {
			t.Errorf("loss[%d] = %.17g, golden %.17g", step, got, want)
		}
	}
	if trace[49] >= trace[0] {
		t.Errorf("training did not reduce loss: first %g, last %g", trace[0], trace[49])
	}
}

// TestTrainerHandlesRaggedBatches exercises batch sizes that don't divide
// evenly into waves, including a batch smaller than the worker count.
func TestTrainerHandlesRaggedBatches(t *testing.T) {
	for _, n := range []int{1, 3, 5, 8, 11} {
		ref := newTrainerFixture(9)
		refLoss := stepOnce(ref, 1, n)
		refW := ref.weights()
		f := newTrainerFixture(9)
		loss := stepOnce(f, 4, n)
		if loss != refLoss {
			t.Errorf("batch %d: loss %g, serial %g", n, loss, refLoss)
		}
		w := f.weights()
		for i := range refW {
			if w[i] != refW[i] {
				t.Fatalf("batch %d: weight[%d] differs", n, i)
			}
		}
	}
}

func stepOnce(f *trainerFixture, parallelism, n int) float64 {
	params := f.mlp.Params()
	trainer := NewTrainer(params, parallelism, func() ([]*Param, SampleFunc) {
		rep := f.mlp.ShareWeights()
		run := func(i int) float64 {
			y, back := rep.Forward(f.samples[i])
			d := y[0] - f.targets[i]
			back(Vec{2 * d / float64(n)})
			return d * d
		}
		return rep.Params(), run
	})
	loss := trainer.Step(n)
	(&SGD{LR: 0.05}).Step(params)
	return loss
}

// TestGradViewSharesWeights pins the replica contract: weight updates are
// visible through views, gradients are not.
func TestGradViewSharesWeights(t *testing.T) {
	p := NewParam("w", 2, 2)
	v := p.GradView()
	p.Val[3] = 9
	if v.Val[3] != 9 {
		t.Error("view should share weight storage")
	}
	v.Grad[0] = 5
	if p.Grad[0] != 0 {
		t.Error("view must not share gradient storage")
	}
	if v.Name != p.Name || v.Rows != p.Rows || v.Cols != p.Cols {
		t.Error("view should preserve metadata")
	}
}
