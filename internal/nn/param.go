// Package nn is a small from-scratch neural-network library: parameters,
// dense/embedding/convolution/LSTM layers with exact backpropagation, MSE
// loss, and SGD/Adam optimizers. It substitutes for the PyTorch models the
// paper uses (Wide-Deep cost estimator, DQN) with identical architectures.
//
// The design is functional: every Forward call returns the output together
// with a backward closure, so layers can be applied repeatedly within one
// sample (LSTM time steps, shared embeddings) and gradients accumulate
// correctly into the shared parameters.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Vec is a dense float64 vector.
type Vec = []float64

// Param is one learnable tensor (stored flat) with its gradient
// accumulator.
type Param struct {
	Name string
	Val  []float64
	Grad []float64
	// Rows/Cols describe the logical matrix shape (Rows=1 for vectors).
	Rows, Cols int
}

// NewParam allocates a zero-initialized parameter.
func NewParam(name string, rows, cols int) *Param {
	return &Param{
		Name: name,
		Val:  make([]float64, rows*cols),
		Grad: make([]float64, rows*cols),
		Rows: rows,
		Cols: cols,
	}
}

// InitXavier fills the parameter with Glorot-uniform noise.
func (p *Param) InitXavier(rng *rand.Rand) *Param {
	fanIn, fanOut := p.Cols, p.Rows
	if fanIn == 0 {
		fanIn = 1
	}
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range p.Val {
		p.Val[i] = (rng.Float64()*2 - 1) * limit
	}
	return p
}

// At returns the element at (r, c).
func (p *Param) At(r, c int) float64 { return p.Val[r*p.Cols+c] }

// Row returns the r-th row slice (shared storage).
func (p *Param) Row(r int) []float64 { return p.Val[r*p.Cols : (r+1)*p.Cols] }

// GradRow returns the r-th gradient row slice (shared storage).
func (p *Param) GradRow(r int) []float64 { return p.Grad[r*p.Cols : (r+1)*p.Cols] }

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() { clear(p.Grad) }

// GradView returns a parameter sharing p's weight storage with a private
// zeroed gradient buffer — the building block of per-worker gradient
// accumulation in the data-parallel Trainer. Updates to the weights (Val)
// are visible through every view; gradients are not.
func (p *Param) GradView() *Param {
	return &Param{
		Name: p.Name,
		Val:  p.Val,
		Grad: make([]float64, len(p.Val)),
		Rows: p.Rows,
		Cols: p.Cols,
	}
}

// Size returns the number of scalar parameters.
func (p *Param) Size() int { return len(p.Val) }

func (p *Param) String() string {
	return fmt.Sprintf("%s[%dx%d]", p.Name, p.Rows, p.Cols)
}

// Module is anything holding learnable parameters.
type Module interface {
	Params() []*Param
}

// CollectParams flattens the parameters of several modules.
func CollectParams(mods ...Module) []*Param {
	var out []*Param
	for _, m := range mods {
		out = append(out, m.Params()...)
	}
	return out
}

// ZeroGrads clears all gradients.
func ZeroGrads(params []*Param) {
	for _, p := range params {
		p.ZeroGrad()
	}
}

// ParamCount sums scalar parameter counts.
func ParamCount(params []*Param) int {
	total := 0
	for _, p := range params {
		total += p.Size()
	}
	return total
}

// Backward is the gradient closure returned by Forward passes: it takes
// dL/dy and returns dL/dx while accumulating parameter gradients.
type Backward func(dy Vec) Vec

// zeros allocates an n-vector.
func zeros(n int) Vec { return make(Vec, n) }

// addInto accumulates src into dst (dst must be at least as long as src).
func addInto(dst, src Vec) {
	if len(src) == 0 {
		return
	}
	dst = dst[:len(src)]
	for i, v := range src {
		dst[i] += v
	}
}

// Concat joins vectors.
func Concat(vs ...Vec) Vec {
	n := 0
	for _, v := range vs {
		n += len(v)
	}
	out := make(Vec, 0, n)
	for _, v := range vs {
		out = append(out, v...)
	}
	return out
}

// SplitBackward splits a gradient of a concatenation back into pieces of
// the given lengths.
func SplitBackward(d Vec, lens ...int) []Vec {
	out := make([]Vec, len(lens))
	off := 0
	for i, n := range lens {
		out[i] = d[off : off+n]
		off += n
	}
	return out
}
