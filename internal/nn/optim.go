package nn

import "math"

// MSE returns the mean squared error between prediction and target plus
// the gradient dL/dpred.
func MSE(pred, target Vec) (float64, Vec) {
	n := float64(len(pred))
	var loss float64
	grad := zeros(len(pred))
	for i := range pred {
		d := pred[i] - target[i]
		loss += d * d
		grad[i] = 2 * d / n
	}
	return loss / n, grad
}

// Optimizer updates parameters from accumulated gradients.
type Optimizer interface {
	Step(params []*Param)
}

// SGD is plain stochastic gradient descent with optional gradient clipping.
type SGD struct {
	LR   float64
	Clip float64 // per-element clip when > 0
}

// Step implements Optimizer.
func (o *SGD) Step(params []*Param) {
	clip := o.Clip > 0
	for _, p := range params {
		for i := range p.Val {
			g := p.Grad[i]
			if clip {
				g = clamp(g, -o.Clip, o.Clip)
			}
			p.Val[i] -= o.LR * g
		}
	}
}

// Adam implements the Adam optimizer (Kingma & Ba, the paper's reference
// [23]) with per-parameter moment state.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64
	Clip    float64 // per-element gradient clip when > 0

	t     int
	state map[*Param]*adamState
}

type adamState struct {
	m, v []float64
}

// NewAdam returns Adam with the usual defaults (β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR:      lr,
		Beta1:   0.9,
		Beta2:   0.999,
		Epsilon: 1e-8,
		state:   make(map[*Param]*adamState),
	}
}

// Step implements Optimizer.
func (o *Adam) Step(params []*Param) {
	o.t++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.t))
	clip := o.Clip > 0
	for _, p := range params {
		st, ok := o.state[p]
		if !ok {
			st = &adamState{m: make([]float64, p.Size()), v: make([]float64, p.Size())}
			o.state[p] = st
		}
		for i := range p.Val {
			g := p.Grad[i]
			if clip {
				g = clamp(g, -o.Clip, o.Clip)
			}
			st.m[i] = o.Beta1*st.m[i] + (1-o.Beta1)*g
			st.v[i] = o.Beta2*st.v[i] + (1-o.Beta2)*g*g
			mHat := st.m[i] / bc1
			vHat := st.v[i] / bc2
			p.Val[i] -= o.LR * mHat / (math.Sqrt(vHat) + o.Epsilon)
		}
	}
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
