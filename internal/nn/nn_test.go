package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// sumLoss is a deterministic scalar loss over a vector: L = Σ w_i·y_i with
// fixed pseudo-random weights, giving non-uniform output gradients.
func sumLoss(y Vec) (float64, Vec) {
	var loss float64
	grad := zeros(len(y))
	for i := range y {
		w := math.Sin(float64(i) + 1)
		loss += w * y[i]
		grad[i] = w
	}
	return loss, grad
}

// checkParamGrads compares analytic parameter gradients against central
// finite differences for a forward function returning the scalar loss.
func checkParamGrads(t *testing.T, params []*Param, forward func() float64, tol float64) {
	t.Helper()
	const eps = 1e-6
	for _, p := range params {
		for i := range p.Val {
			orig := p.Val[i]
			p.Val[i] = orig + eps
			lp := forward()
			p.Val[i] = orig - eps
			lm := forward()
			p.Val[i] = orig
			want := (lp - lm) / (2 * eps)
			got := p.Grad[i]
			if math.Abs(got-want) > tol*(1+math.Abs(want)) {
				t.Errorf("%s grad[%d] = %g, finite difference %g", p, i, got, want)
			}
		}
	}
}

func TestLinearGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear("fc", 4, 3, rng)
	x := Vec{0.5, -1, 2, 0.3}
	forward := func() float64 {
		y, _ := l.Forward(x)
		loss, _ := sumLoss(y)
		return loss
	}
	ZeroGrads(l.Params())
	y, back := l.Forward(x)
	_, dy := sumLoss(y)
	dx := back(dy)
	checkParamGrads(t, l.Params(), forward, 1e-6)
	// Input gradient via finite differences.
	const eps = 1e-6
	for i := range x {
		orig := x[i]
		x[i] = orig + eps
		lp := forward()
		x[i] = orig - eps
		lm := forward()
		x[i] = orig
		want := (lp - lm) / (2 * eps)
		if math.Abs(dx[i]-want) > 1e-6 {
			t.Errorf("dx[%d] = %g, want %g", i, dx[i], want)
		}
	}
}

func TestActivationGradients(t *testing.T) {
	acts := map[string]func(Vec) (Vec, Backward){
		"relu":    ReLU,
		"sigmoid": Sigmoid,
		"tanh":    Tanh,
	}
	x := Vec{-1.5, -0.2, 0.3, 2.0}
	for name, act := range acts {
		y, back := act(x)
		_, dy := sumLoss(y)
		dx := back(dy)
		const eps = 1e-6
		for i := range x {
			orig := x[i]
			x[i] = orig + eps
			yp, _ := act(x)
			lp, _ := sumLoss(yp)
			x[i] = orig - eps
			ym, _ := act(x)
			lm, _ := sumLoss(ym)
			x[i] = orig
			want := (lp - lm) / (2 * eps)
			if math.Abs(dx[i]-want) > 1e-5 {
				t.Errorf("%s: dx[%d] = %g, want %g", name, i, dx[i], want)
			}
		}
	}
}

func TestEmbeddingGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	e := NewEmbedding("emb", 5, 3, rng)
	forward := func() float64 {
		y1, _ := e.Forward(2)
		y2, _ := e.Forward(2) // repeated lookup accumulates
		y3, _ := e.Forward(4)
		l1, _ := sumLoss(y1)
		l2, _ := sumLoss(y2)
		l3, _ := sumLoss(y3)
		return l1 + l2 + l3
	}
	ZeroGrads(e.Params())
	y1, b1 := e.Forward(2)
	y2, b2 := e.Forward(2)
	y3, b3 := e.Forward(4)
	_, d1 := sumLoss(y1)
	_, d2 := sumLoss(y2)
	_, d3 := sumLoss(y3)
	b1(d1)
	b2(d2)
	b3(d3)
	checkParamGrads(t, e.Params(), forward, 1e-6)
}

func TestEmbeddingClampsUnknownIDs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	e := NewEmbedding("emb", 4, 2, rng)
	y1, _ := e.Forward(-7)
	y2, _ := e.Forward(99)
	y0, _ := e.Forward(0)
	for i := range y0 {
		if y1[i] != y0[i] || y2[i] != y0[i] {
			t.Fatal("out-of-range ids should clamp to row 0")
		}
	}
}

func TestLSTMGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	l := NewLSTM("lstm", 3, 4, rng)
	xs := []Vec{{0.1, -0.5, 0.3}, {0.7, 0.2, -0.8}, {-0.3, 0.9, 0.4}}
	forward := func() float64 {
		h, _ := l.Forward(xs)
		loss, _ := sumLoss(h)
		return loss
	}
	ZeroGrads(l.Params())
	h, back := l.Forward(xs)
	_, dh := sumLoss(h)
	dxs := back(dh)
	checkParamGrads(t, l.Params(), forward, 1e-5)
	// Check input gradients of the middle step.
	const eps = 1e-6
	for i := range xs[1] {
		orig := xs[1][i]
		xs[1][i] = orig + eps
		lp := forward()
		xs[1][i] = orig - eps
		lm := forward()
		xs[1][i] = orig
		want := (lp - lm) / (2 * eps)
		if math.Abs(dxs[1][i]-want) > 1e-5 {
			t.Errorf("dxs[1][%d] = %g, want %g", i, dxs[1][i], want)
		}
	}
}

func TestLSTMEmptySequence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l := NewLSTM("lstm", 2, 3, rng)
	h, back := l.Forward(nil)
	for _, v := range h {
		if v != 0 {
			t.Fatal("empty sequence should encode to zeros")
		}
	}
	if dxs := back(zeros(3)); len(dxs) != 0 {
		t.Fatal("no input gradients expected")
	}
}

func TestConvBlockGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	b := NewConvBlock("conv", rng)
	m := []Vec{{0.2, -0.4}, {0.9, 0.1}, {-0.6, 0.5}, {0.3, 0.8}}
	forward := func() float64 {
		y, _ := b.Forward(m)
		var loss float64
		for t := range y {
			l, _ := sumLoss(y[t])
			loss += l * float64(t+1)
		}
		return loss
	}
	ZeroGrads(b.Params())
	y, back := b.Forward(m)
	dy := make([]Vec, len(y))
	for ti := range y {
		_, g := sumLoss(y[ti])
		dy[ti] = zeros(len(g))
		for i := range g {
			dy[ti][i] = g[i] * float64(ti+1)
		}
	}
	dm := back(dy)
	checkParamGrads(t, b.Params(), forward, 1e-4)
	const eps = 1e-6
	for ti := range m {
		for i := range m[ti] {
			orig := m[ti][i]
			m[ti][i] = orig + eps
			lp := forward()
			m[ti][i] = orig - eps
			lm := forward()
			m[ti][i] = orig
			want := (lp - lm) / (2 * eps)
			if math.Abs(dm[ti][i]-want) > 1e-4*(1+math.Abs(want)) {
				t.Errorf("dm[%d][%d] = %g, want %g", ti, i, dm[ti][i], want)
			}
		}
	}
}

func TestMLPGradientsAndShape(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewMLP("dqn", []int{5, 16, 64, 16, 1}, rng)
	if got := len(m.Layers); got != 4 {
		t.Fatalf("want 4 layers, got %d", got)
	}
	x := Vec{0.1, -0.2, 0.3, 0.4, -0.5}
	forward := func() float64 {
		y, _ := m.Forward(x)
		return y[0] * 3
	}
	ZeroGrads(m.Params())
	y, back := m.Forward(x)
	if len(y) != 1 {
		t.Fatalf("output dim %d, want 1", len(y))
	}
	back(Vec{3})
	checkParamGrads(t, m.Params(), forward, 1e-4)
}

func TestAvgPoolGradients(t *testing.T) {
	xs := []Vec{{1, 2}, {3, 4}, {5, 12}}
	y, back := AvgPool(xs)
	if y[0] != 3 || y[1] != 6 {
		t.Fatalf("AvgPool = %v", y)
	}
	d := back(Vec{3, 9})
	if d[0] != 1 || d[1] != 3 {
		t.Errorf("AvgPool backward = %v", d)
	}
}

func TestAvgPoolColsGradients(t *testing.T) {
	m := []Vec{{2, 4}, {6, 8}}
	y, back := AvgPoolCols(m)
	if y[0] != 4 || y[1] != 6 {
		t.Fatalf("AvgPoolCols = %v", y)
	}
	dm := back([]Vec{{2, 4}})
	if dm[0][0] != 1 || dm[1][1] != 2 {
		t.Errorf("AvgPoolCols backward = %v", dm)
	}
}

func TestMSE(t *testing.T) {
	loss, grad := MSE(Vec{3}, Vec{1})
	if loss != 4 {
		t.Errorf("loss = %v, want 4", loss)
	}
	if grad[0] != 4 {
		t.Errorf("grad = %v, want 4", grad[0])
	}
	loss2, _ := MSE(Vec{1, 2}, Vec{1, 2})
	if loss2 != 0 {
		t.Errorf("zero-error loss = %v", loss2)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize (w-3)^2 in one parameter.
	p := NewParam("w", 1, 1)
	opt := NewAdam(0.1)
	for i := 0; i < 500; i++ {
		p.ZeroGrad()
		p.Grad[0] = 2 * (p.Val[0] - 3)
		opt.Step([]*Param{p})
	}
	if math.Abs(p.Val[0]-3) > 1e-3 {
		t.Errorf("Adam did not converge: w = %v", p.Val[0])
	}
}

func TestSGDStepAndClip(t *testing.T) {
	p := NewParam("w", 1, 2)
	p.Grad[0] = 10
	p.Grad[1] = -10
	(&SGD{LR: 0.1, Clip: 1}).Step([]*Param{p})
	if p.Val[0] != -0.1 || p.Val[1] != 0.1 {
		t.Errorf("clipped SGD step wrong: %v", p.Val)
	}
}

func TestLinearTrainsToTarget(t *testing.T) {
	// Fit y = 2a - b + 0.5 with a single linear layer.
	rng := rand.New(rand.NewSource(8))
	l := NewLinear("fit", 2, 1, rng)
	opt := NewAdam(0.05)
	for epoch := 0; epoch < 400; epoch++ {
		ZeroGrads(l.Params())
		for i := 0; i < 8; i++ {
			a, b := rng.Float64(), rng.Float64()
			target := 2*a - b + 0.5
			y, back := l.Forward(Vec{a, b})
			_, dy := MSE(y, Vec{target})
			back(dy)
		}
		opt.Step(l.Params())
	}
	y, _ := l.Forward(Vec{1, 1})
	if math.Abs(y[0]-1.5) > 0.05 {
		t.Errorf("trained prediction = %v, want 1.5", y[0])
	}
}

func TestConcatSplit(t *testing.T) {
	c := Concat(Vec{1, 2}, Vec{3}, Vec{4, 5, 6})
	if len(c) != 6 || c[2] != 3 || c[5] != 6 {
		t.Fatalf("Concat = %v", c)
	}
	parts := SplitBackward(c, 2, 1, 3)
	if len(parts) != 3 || parts[1][0] != 3 || parts[2][2] != 6 {
		t.Errorf("SplitBackward = %v", parts)
	}
}

func TestParamHelpers(t *testing.T) {
	p := NewParam("m", 2, 3)
	if p.Size() != 6 {
		t.Errorf("Size = %d", p.Size())
	}
	p.Val[4] = 7
	if p.At(1, 1) != 7 {
		t.Errorf("At(1,1) = %v", p.At(1, 1))
	}
	p.Row(0)[2] = 5
	if p.Val[2] != 5 {
		t.Error("Row should share storage")
	}
	p.Grad[0] = 1
	p.ZeroGrad()
	if p.Grad[0] != 0 {
		t.Error("ZeroGrad failed")
	}
	if ParamCount([]*Param{p, NewParam("q", 1, 4)}) != 10 {
		t.Error("ParamCount wrong")
	}
}

func TestXavierInitBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := NewParam("w", 10, 20).InitXavier(rng)
	limit := math.Sqrt(6.0 / 30.0)
	var nonzero int
	for _, v := range p.Val {
		if math.Abs(v) > limit {
			t.Fatalf("weight %v exceeds Xavier limit %v", v, limit)
		}
		if v != 0 {
			nonzero++
		}
	}
	if nonzero < 150 {
		t.Error("suspiciously many zero weights")
	}
}

func TestSaveLoadParams(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	l1 := NewLinear("fc", 3, 2, rng)
	var buf bytes.Buffer
	if err := SaveParams(&buf, l1.Params()); err != nil {
		t.Fatal(err)
	}
	l2 := NewLinear("fc", 3, 2, rand.New(rand.NewSource(99)))
	if err := LoadParams(bytes.NewReader(buf.Bytes()), l2.Params()); err != nil {
		t.Fatal(err)
	}
	for i := range l1.W.Val {
		if l1.W.Val[i] != l2.W.Val[i] {
			t.Fatal("weights differ after load")
		}
	}
	// Missing parameter name.
	l3 := NewLinear("other", 3, 2, rng)
	if err := LoadParams(bytes.NewReader(buf.Bytes()), l3.Params()); err == nil {
		t.Error("mismatched names should fail")
	}
	// Shape mismatch.
	l4 := NewLinear("fc", 4, 2, rng)
	if err := LoadParams(bytes.NewReader(buf.Bytes()), l4.Params()); err == nil {
		t.Error("shape mismatch should fail")
	}
	// Garbage input.
	if err := LoadParams(bytes.NewReader([]byte("{")), l2.Params()); err == nil {
		t.Error("garbage should fail")
	}
}

func BenchmarkLSTMForwardBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	l := NewLSTM("bench", 16, 16, rng)
	xs := make([]Vec, 10)
	for i := range xs {
		xs[i] = make(Vec, 16)
		for j := range xs[i] {
			xs[i][j] = rng.Float64()
		}
	}
	dh := make(Vec, 16)
	for i := range dh {
		dh[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, back := l.Forward(xs)
		back(dh)
	}
}

func BenchmarkMLPForward(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	m := NewMLP("bench", []int{10, 16, 64, 16, 1}, rng)
	x := make(Vec, 10)
	for i := range x {
		x[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(x)
	}
}
