package nn

import (
	"math"
	"math/rand"
)

// MatBackward propagates matrix-shaped gradients.
type MatBackward func(dy []Vec) []Vec

const bnEps = 1e-5

// BatchNorm normalizes a matrix over all its elements with a learned
// scale and shift: y = γ·(x-μ)/√(σ²+ε) + β. It is the single-channel
// BatchNorm2d of the paper's String Encoding model, computed with
// per-sample (instance) statistics.
type BatchNorm struct {
	Gamma *Param
	Beta  *Param
}

// NewBatchNorm allocates a unit-scale, zero-shift normalizer.
func NewBatchNorm(name string) *BatchNorm {
	bn := &BatchNorm{
		Gamma: NewParam(name+".gamma", 1, 1),
		Beta:  NewParam(name+".beta", 1, 1),
	}
	bn.Gamma.Val[0] = 1
	return bn
}

// Params implements Module.
func (bn *BatchNorm) Params() []*Param { return []*Param{bn.Gamma, bn.Beta} }

// matStats accumulates the instance statistics of a T×D matrix in the
// repo's canonical reduction order: a single accumulator walking rows
// outer, columns inner (row-major), mean fully reduced before the
// variance pass starts. Forward, InferInto and the float32 mirror
// (BatchNorm32) all share this order — Forward/InferInto through this
// helper, the f32 path by construction — so the f32-vs-f64 tolerance
// bounds pinned in the tests do not depend on which path ran or on any
// kernel block size. Documented in PERFORMANCE.md ("Accumulation
// order").
func matStats(m []Vec) (mu, variance float64) {
	n := 0
	for t := range m {
		n += len(m[t])
		for _, v := range m[t] {
			mu += v
		}
	}
	mu /= float64(n)
	for t := range m {
		for _, v := range m[t] {
			dv := v - mu
			variance += dv * dv
		}
	}
	variance /= float64(n)
	return mu, variance
}

// ShareWeights returns a replica sharing weight storage with private
// gradient buffers.
func (bn *BatchNorm) ShareWeights() *BatchNorm {
	return &BatchNorm{Gamma: bn.Gamma.GradView(), Beta: bn.Beta.GradView()}
}

// Forward normalizes the matrix, preserving its shape.
func (bn *BatchNorm) Forward(m []Vec) ([]Vec, MatBackward) {
	T := len(m)
	if T == 0 {
		return nil, func(dy []Vec) []Vec { return nil }
	}
	D := len(m[0])
	n := float64(T * D)
	mu, variance := matStats(m)
	std := math.Sqrt(variance + bnEps)
	gamma, beta := bn.Gamma.Val[0], bn.Beta.Val[0]

	xhat := make([]Vec, T)
	out := make([]Vec, T)
	for t := 0; t < T; t++ {
		xhat[t] = zeros(D)
		out[t] = zeros(D)
		for d := 0; d < D; d++ {
			xh := (m[t][d] - mu) / std
			xhat[t][d] = xh
			out[t][d] = gamma*xh + beta
		}
	}

	back := func(dy []Vec) []Vec {
		var dGamma, dBeta, sumDxhat, sumDxhatXhat float64
		dXhat := make([]Vec, T)
		for t := 0; t < T; t++ {
			dXhat[t] = zeros(D)
			for d := 0; d < D; d++ {
				dGamma += dy[t][d] * xhat[t][d]
				dBeta += dy[t][d]
				dx := dy[t][d] * gamma
				dXhat[t][d] = dx
				sumDxhat += dx
				sumDxhatXhat += dx * xhat[t][d]
			}
		}
		bn.Gamma.Grad[0] += dGamma
		bn.Beta.Grad[0] += dBeta
		dm := make([]Vec, T)
		for t := 0; t < T; t++ {
			dm[t] = zeros(D)
			for d := 0; d < D; d++ {
				dm[t][d] = (dXhat[t][d] - sumDxhat/n - xhat[t][d]*sumDxhatXhat/n) / std
			}
		}
		return dm
	}
	return out, back
}

// ConvBlock is one convolution block of the paper's String Encoding model:
// Conv2d (3×1 kernel, single channel, zero padding) → BatchNorm2d → ReLU.
// Inputs are matrices represented as slices of equal-length row vectors
// (rows = characters, columns = embedding dimensions); the convolution
// slides along the row (character) axis.
type ConvBlock struct {
	// K holds the 3 kernel weights plus bias [1 x 4].
	K *Param
	// BN is the single-channel batch normalization.
	BN *BatchNorm
}

// NewConvBlock allocates an initialized block.
func NewConvBlock(name string, rng *rand.Rand) *ConvBlock {
	return &ConvBlock{
		K:  NewParam(name+".k", 1, 4).InitXavier(rng),
		BN: NewBatchNorm(name),
	}
}

// Params implements Module.
func (b *ConvBlock) Params() []*Param { return []*Param{b.K, b.BN.Gamma, b.BN.Beta} }

// ShareWeights returns a replica sharing weight storage with private
// gradient buffers.
func (b *ConvBlock) ShareWeights() *ConvBlock {
	return &ConvBlock{K: b.K.GradView(), BN: b.BN.ShareWeights()}
}

// Forward applies conv → norm → relu, preserving the matrix shape.
func (b *ConvBlock) Forward(m []Vec) ([]Vec, MatBackward) {
	T := len(m)
	if T == 0 {
		return nil, func(dy []Vec) []Vec { return nil }
	}
	D := len(m[0])
	w0, w1, w2, bias := b.K.Val[0], b.K.Val[1], b.K.Val[2], b.K.Val[3]

	// Convolution with zero padding along the character axis.
	conv := make([]Vec, T)
	for t := 0; t < T; t++ {
		conv[t] = zeros(D)
		for d := 0; d < D; d++ {
			sum := bias + w1*m[t][d]
			if t > 0 {
				sum += w0 * m[t-1][d]
			}
			if t < T-1 {
				sum += w2 * m[t+1][d]
			}
			conv[t][d] = sum
		}
	}

	norm, bnBack := b.BN.Forward(conv)
	out := make([]Vec, T)
	for t := 0; t < T; t++ {
		out[t] = zeros(D)
		for d := 0; d < D; d++ {
			if y := norm[t][d]; y > 0 {
				out[t][d] = y
			}
		}
	}

	back := func(dy []Vec) []Vec {
		// ReLU backward.
		dNorm := make([]Vec, T)
		for t := 0; t < T; t++ {
			dNorm[t] = zeros(D)
			for d := 0; d < D; d++ {
				if norm[t][d] > 0 {
					dNorm[t][d] = dy[t][d]
				}
			}
		}
		dConv := bnBack(dNorm)
		// Convolution backward.
		dm := make([]Vec, T)
		for t := 0; t < T; t++ {
			dm[t] = zeros(D)
		}
		var dw0, dw1, dw2, dbias float64
		for t := 0; t < T; t++ {
			for d := 0; d < D; d++ {
				g := dConv[t][d]
				if g == 0 { //lint:allow floateq exact-zero sparsity fast path in backprop
					continue
				}
				dbias += g
				dw1 += g * m[t][d]
				dm[t][d] += g * w1
				if t > 0 {
					dw0 += g * m[t-1][d]
					dm[t-1][d] += g * w0
				}
				if t < T-1 {
					dw2 += g * m[t+1][d]
					dm[t+1][d] += g * w2
				}
			}
		}
		b.K.Grad[0] += dw0
		b.K.Grad[1] += dw1
		b.K.Grad[2] += dw2
		b.K.Grad[3] += dbias
		return dm
	}
	return out, back
}

// AvgPoolCols averages a matrix over its rows, producing one vector of the
// column dimension: Ds[i] = Avg(M'[:, i]) as in the String Encoding model.
func AvgPoolCols(m []Vec) (Vec, MatBackward) {
	T := len(m)
	if T == 0 {
		return nil, func(dy []Vec) []Vec { return nil }
	}
	D := len(m[0])
	y := zeros(D)
	for _, row := range m {
		addInto(y, row)
	}
	inv := 1 / float64(T)
	for i := range y {
		y[i] *= inv
	}
	back := func(dy []Vec) []Vec {
		d := dy[0]
		dm := make([]Vec, T)
		for t := 0; t < T; t++ {
			dm[t] = zeros(D)
			for i := range d {
				dm[t][i] = d[i] * inv
			}
		}
		return dm
	}
	return y, back
}
