package nn

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestPersistRoundTripPredictions saves a trained stack of layers,
// loads it into a differently initialized clone, and asserts identical
// predictions on 100 random inputs — byte-exact, since SaveParams
// serializes full float64 precision.
func TestPersistRoundTripPredictions(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m1 := NewMLP("net", []int{6, 16, 8, 1}, rng)
	// Nudge weights away from init so the round trip covers trained state.
	opt := &SGD{LR: 0.01}
	for step := 0; step < 20; step++ {
		ZeroGrads(m1.Params())
		x := make(Vec, 6)
		for j := range x {
			x[j] = rng.Float64()
		}
		y, back := m1.Forward(x)
		back(Vec{2 * (y[0] - 1)})
		opt.Step(m1.Params())
	}

	var buf bytes.Buffer
	if err := SaveParams(&buf, m1.Params()); err != nil {
		t.Fatal(err)
	}
	m2 := NewMLP("net", []int{6, 16, 8, 1}, rand.New(rand.NewSource(77)))
	if err := LoadParams(bytes.NewReader(buf.Bytes()), m2.Params()); err != nil {
		t.Fatal(err)
	}

	inputs := make([]Vec, 100)
	for i := range inputs {
		inputs[i] = make(Vec, 6)
		for j := range inputs[i] {
			inputs[i][j] = rng.Float64()*4 - 2
		}
	}
	var differed bool
	for i, x := range inputs {
		y1, _ := m1.Forward(x)
		y2, _ := m2.Forward(x)
		if y1[0] != y2[0] {
			t.Fatalf("input %d: loaded model predicts %g, original %g", i, y2[0], y1[0])
		}
		if y1[0] != 0 {
			differed = true
		}
	}
	if !differed {
		t.Fatal("all predictions zero; test is vacuous")
	}
}

// TestPersistRoundTripStructuredLayers covers the LSTM and ConvBlock
// parameter groups through the same save→load→predict contract.
func TestPersistRoundTripStructuredLayers(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	l1 := NewLSTM("enc", 3, 5, rng)
	c1 := NewConvBlock("cv", rng)
	params := append(l1.Params(), c1.Params()...)

	var buf bytes.Buffer
	if err := SaveParams(&buf, params); err != nil {
		t.Fatal(err)
	}
	rng2 := rand.New(rand.NewSource(88))
	l2 := NewLSTM("enc", 3, 5, rng2)
	c2 := NewConvBlock("cv", rng2)
	if err := LoadParams(bytes.NewReader(buf.Bytes()), append(l2.Params(), c2.Params()...)); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 100; i++ {
		xs := []Vec{{rng.Float64(), rng.Float64(), rng.Float64()}}
		h1, _ := l1.Forward(xs)
		h2, _ := l2.Forward(xs)
		for j := range h1 {
			if h1[j] != h2[j] {
				t.Fatalf("input %d: LSTM outputs differ at %d", i, j)
			}
		}
		m := randMat(rng, 3, 2)
		y1, _ := c1.Forward(m)
		y2, _ := c2.Forward(m)
		for ti := range y1 {
			for d := range y1[ti] {
				if y1[ti][d] != y2[ti][d] {
					t.Fatalf("input %d: ConvBlock outputs differ at (%d,%d)", i, ti, d)
				}
			}
		}
	}
}
