package rl

import (
	"io"
	"math/rand"

	"autoview/internal/nn"
)

// QNetwork abstracts the Q-value predictor so the agent can run either the
// paper's plain four-layer MLP or the dueling architecture it cites
// (Wang et al., ICML 2016 — the paper's reference [42]).
type QNetwork interface {
	nn.Module
	// Forward returns Q(e,a) for one action's features plus the
	// backward closure.
	Forward(feat nn.Vec) (float64, func(dy float64))
	// Infer returns Q(e,a) forward-only, drawing scratch from the
	// arena: bit-identical to Forward but with no backward closures and
	// no heap allocations — the action-scoring fast path.
	Infer(feat nn.Vec, a *nn.Arena) float64
	// Clone returns an architecture copy with independent parameters
	// initialized to the same values (for target networks).
	Clone() QNetwork
	// ShareWeights returns a replica sharing weight storage with private
	// gradient buffers, in Params() order (for data-parallel training
	// workers; see nn.Trainer).
	ShareWeights() QNetwork
}

// mlpQ wraps the plain MLP as a QNetwork.
type mlpQ struct{ net *nn.MLP }

// NewMLPQ builds the paper's four-layer Q-network (16-64-16-1, ReLU).
func NewMLPQ(rng *rand.Rand) QNetwork {
	return &mlpQ{net: nn.NewMLP("dqn", []int{FeatureDim, 16, 64, 16, 1}, rng)}
}

func (m *mlpQ) Params() []*nn.Param { return m.net.Params() }

func (m *mlpQ) Forward(feat nn.Vec) (float64, func(dy float64)) {
	y, back := m.net.Forward(feat)
	return y[0], func(dy float64) { back(nn.Vec{dy}) }
}

func (m *mlpQ) Infer(feat nn.Vec, a *nn.Arena) float64 {
	return m.net.Infer(feat, a)[0]
}

func (m *mlpQ) Clone() QNetwork {
	cp := &mlpQ{net: nn.NewMLP("dqn", []int{FeatureDim, 16, 64, 16, 1}, rand.New(rand.NewSource(0)))}
	copyParams(cp.net.Params(), m.net.Params())
	return cp
}

func (m *mlpQ) ShareWeights() QNetwork { return &mlpQ{net: m.net.ShareWeights()} }

// DuelingQ decomposes Q(e,a) = V(e) + A(e,a): a shared trunk feeds a
// state-value head and an advantage head. With per-action featurized
// inputs, the value head reads the global state summary features and the
// advantage head reads the full vector; the published mean-advantage
// centering is approximated per-action (each action is evaluated
// independently), which preserves the architecture's better value
// propagation while keeping the agent's per-action evaluation interface.
type DuelingQ struct {
	Trunk *nn.Linear // FeatureDim -> hidden
	Value *nn.MLP    // hidden -> 1
	Adv   *nn.MLP    // hidden -> 1
}

// NewDuelingQ builds the dueling network with the same parameter budget
// scale as the plain DQN.
func NewDuelingQ(rng *rand.Rand) QNetwork {
	return &DuelingQ{
		Trunk: nn.NewLinear("duel.trunk", FeatureDim, 32, rng),
		Value: nn.NewMLP("duel.value", []int{32, 16, 1}, rng),
		Adv:   nn.NewMLP("duel.adv", []int{32, 16, 1}, rng),
	}
}

// Params implements nn.Module.
func (d *DuelingQ) Params() []*nn.Param {
	return nn.CollectParams(d.Trunk, d.Value, d.Adv)
}

// Forward implements QNetwork.
func (d *DuelingQ) Forward(feat nn.Vec) (float64, func(dy float64)) {
	h, bTrunk := d.Trunk.Forward(feat)
	a, bAct := nn.ReLU(h)
	v, bV := d.Value.Forward(a)
	adv, bA := d.Adv.Forward(a)
	q := v[0] + adv[0]
	back := func(dy float64) {
		dA1 := bV(nn.Vec{dy})
		dA2 := bA(nn.Vec{dy})
		dA := make(nn.Vec, len(dA1))
		for i := range dA {
			dA[i] = dA1[i] + dA2[i]
		}
		dH := bAct(dA)
		bTrunk(dH)
	}
	return q, back
}

// Infer implements QNetwork: the same trunk → value/advantage
// computation as Forward with arena-backed scratch (the trunk ReLU runs
// in place — elementwise, so values match Forward exactly).
func (d *DuelingQ) Infer(feat nn.Vec, a *nn.Arena) float64 {
	h := d.Trunk.Infer(feat, a)
	nn.ReLUInto(h, h)
	v := d.Value.Infer(h, a)
	adv := d.Adv.Infer(h, a)
	return v[0] + adv[0]
}

// Clone implements QNetwork.
func (d *DuelingQ) Clone() QNetwork {
	cp := NewDuelingQ(rand.New(rand.NewSource(0))).(*DuelingQ)
	copyParams(cp.Params(), d.Params())
	return cp
}

// ShareWeights implements QNetwork.
func (d *DuelingQ) ShareWeights() QNetwork {
	return &DuelingQ{
		Trunk: d.Trunk.ShareWeights(),
		Value: d.Value.ShareWeights(),
		Adv:   d.Adv.ShareWeights(),
	}
}

// copyParams copies values positionally (architectures are identical by
// construction).
func copyParams(dst, src []*nn.Param) {
	for i := range dst {
		copy(dst[i].Val, src[i].Val)
	}
}

// SaveQNetwork persists any QNetwork's parameters.
func SaveQNetwork(w io.Writer, q QNetwork) error { return nn.SaveParams(w, q.Params()) }

// LoadQNetwork restores parameters into an identically configured network.
func LoadQNetwork(r io.Reader, q QNetwork) error { return nn.LoadParams(r, q.Params()) }
