package rl

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"autoview/internal/catalog"
	"autoview/internal/mvs"
)

func randomInstance(rng *rand.Rand, nq, nv int) *mvs.Instance {
	in := &mvs.Instance{
		Benefit:  make([][]float64, nq),
		Overhead: make([]float64, nv),
		Overlap:  make([][]bool, nv),
	}
	for j := 0; j < nv; j++ {
		in.Overhead[j] = rng.Float64()*2 + 0.1
		in.Overlap[j] = make([]bool, nv)
	}
	for j := 0; j < nv; j++ {
		for k := j + 1; k < nv; k++ {
			if rng.Float64() < 0.25 {
				in.Overlap[j][k] = true
				in.Overlap[k][j] = true
			}
		}
	}
	for i := 0; i < nq; i++ {
		in.Benefit[i] = make([]float64, nv)
		for j := 0; j < nv; j++ {
			if rng.Float64() < 0.5 {
				in.Benefit[i][j] = rng.Float64() * 3
			}
		}
	}
	return in
}

func TestFeaturesShapeAndBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := randomInstance(rng, 5, 7)
	st := mvs.NewState(in)
	st.Z[0] = true
	st.Z[3] = true
	y, bcur := in.BestY(st.Z)
	st.Y = y
	bmax := in.MaxBenefits()
	var omax, bmaxSum float64
	for _, o := range in.Overhead {
		omax += o
	}
	for _, b := range bmax {
		bmaxSum += b
	}
	feats := Features(in, st, bcur, bmax, omax, bmaxSum)
	if len(feats) != 7 {
		t.Fatalf("want 7 action features, got %d", len(feats))
	}
	for j, f := range feats {
		if len(f) != FeatureDim {
			t.Fatalf("action %d: dim %d, want %d", j, len(f), FeatureDim)
		}
		for k, v := range f {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("action %d feature %d = %v", j, k, v)
			}
		}
		if f[0] != 0 && f[0] != 1 {
			t.Errorf("z feature should be binary, got %v", f[0])
		}
	}
	if feats[0][0] != 1 || feats[1][0] != 0 {
		t.Error("z feature does not reflect state")
	}
}

func TestAgentNetworkShape(t *testing.T) {
	a := NewAgent(AgentConfig{}, rand.New(rand.NewSource(2)))
	// The paper's DQN: four FC layers of 16, 64, 16 and 1 neurons.
	if len(a.Net.Layers) != 4 {
		t.Fatalf("want 4 layers, got %d", len(a.Net.Layers))
	}
	wantOut := []int{16, 64, 16, 1}
	for i, l := range a.Net.Layers {
		if l.OutDim() != wantOut[i] {
			t.Errorf("layer %d out = %d, want %d", i, l.OutDim(), wantOut[i])
		}
	}
	if a.Net.Layers[0].InDim() != FeatureDim {
		t.Errorf("input dim %d, want %d", a.Net.Layers[0].InDim(), FeatureDim)
	}
}

func TestAgentMemoryEviction(t *testing.T) {
	a := NewAgent(AgentConfig{MemoryCap: 5}, rand.New(rand.NewSource(3)))
	for i := 0; i < 12; i++ {
		a.Remember(Experience{Action: i, State: [][]float64{make([]float64, FeatureDim)}})
	}
	if a.MemoryLen() != 5 {
		t.Fatalf("memory len %d, want 5", a.MemoryLen())
	}
	if a.Memory()[0].Action != 7 {
		t.Errorf("oldest surviving action = %d, want 7", a.Memory()[0].Action)
	}
}

func TestAgentLearnsSimpleValue(t *testing.T) {
	// Two actions with fixed features: action 0 always yields reward 1,
	// action 1 yields reward 0 (terminal transitions). The learned Q
	// must separate them.
	a := NewAgent(AgentConfig{LearnRate: 0.01, BatchSize: 8}, rand.New(rand.NewSource(4)))
	f0 := make([]float64, FeatureDim)
	f0[0] = 1
	f1 := make([]float64, FeatureDim)
	f1[1] = 1
	state := [][]float64{f0, f1}
	for i := 0; i < 40; i++ {
		a.Remember(Experience{State: state, Action: 0, Reward: 1, NextState: state, Terminal: true})
		a.Remember(Experience{State: state, Action: 1, Reward: 0, NextState: state, Terminal: true})
	}
	for i := 0; i < 300; i++ {
		a.Learn()
	}
	q0, q1 := a.Q(f0), a.Q(f1)
	if q0 < q1+0.3 {
		t.Errorf("Q(a0)=%v should clearly exceed Q(a1)=%v", q0, q1)
	}
	if a.BestAction(state) != 0 {
		t.Error("BestAction should pick the rewarding action")
	}
}

func TestLearnEmptyMemoryIsNoop(t *testing.T) {
	a := NewAgent(AgentConfig{}, rand.New(rand.NewSource(5)))
	if loss := a.Learn(); loss != 0 {
		t.Errorf("Learn on empty memory = %v, want 0", loss)
	}
}

func TestLearnFromRestoresMemory(t *testing.T) {
	a := NewAgent(AgentConfig{BatchSize: 2}, rand.New(rand.NewSource(6)))
	a.Remember(Experience{State: [][]float64{make([]float64, FeatureDim)}, Terminal: true})
	offline := []Experience{
		{State: [][]float64{make([]float64, FeatureDim)}, Reward: 1, Terminal: true},
	}
	a.LearnFrom(offline, 5)
	if a.MemoryLen() != 1 {
		t.Errorf("online memory len %d after LearnFrom, want 1", a.MemoryLen())
	}
}

func TestRLViewFeasibleAndTraced(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in := randomInstance(rng, 10, 8)
	res := RLView(in, Options{
		InitIterations: 5,
		Epochs:         10,
		Rand:           rand.New(rand.NewSource(8)),
	})
	if res.Best == nil || res.Final == nil {
		t.Fatal("missing states")
	}
	if !in.Feasible(res.Best) || !in.Feasible(res.Final) {
		t.Error("RLView produced infeasible state")
	}
	if math.Abs(in.Utility(res.Best)-res.BestUtility) > 1e-9 {
		t.Error("BestUtility inconsistent")
	}
	if res.Steps == 0 || len(res.Trace) < res.Steps {
		t.Errorf("steps=%d trace=%d", res.Steps, len(res.Trace))
	}
	// Each episode runs at least |Z| steps (Algorithm 2's while
	// condition), so 10 epochs give at least 80 steps.
	if res.Steps < 80 {
		t.Errorf("steps = %d, want >= 80", res.Steps)
	}
}

func TestRLViewNotWorseThanWarmStartAndNearOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	in := randomInstance(rng, 12, 8)
	opt := mvs.Optimal(in, 0)
	warm := mvs.IterView(in, mvs.IterOptions{Iterations: 10, Rand: rand.New(rand.NewSource(10))})
	res := RLView(in, Options{
		InitIterations: 10,
		Epochs:         30,
		Rand:           rand.New(rand.NewSource(10)),
	})
	if res.BestUtility < warm.BestUtility-1e-9 {
		t.Errorf("RLView best %v below its own warm start %v", res.BestUtility, warm.BestUtility)
	}
	if res.BestUtility > opt.Utility+1e-9 {
		t.Fatalf("RLView best %v exceeds optimum %v", res.BestUtility, opt.Utility)
	}
	if res.BestUtility < 0.6*opt.Utility {
		t.Errorf("RLView best %v far below optimum %v", res.BestUtility, opt.Utility)
	}
}

func TestRLViewStabilizesRelativeToIterView(t *testing.T) {
	// Figure 10's qualitative claim: late-run utilities fluctuate less
	// under RLView than under IterView.
	rng := rand.New(rand.NewSource(11))
	in := randomInstance(rng, 20, 12)
	iters := 300
	iv := mvs.IterView(in, mvs.IterOptions{Iterations: iters, Rand: rand.New(rand.NewSource(12))})
	res := RLView(in, Options{
		InitIterations: 10,
		Epochs:         20,
		Rand:           rand.New(rand.NewSource(12)),
	})
	ivVar := tailVariance(iv.Trace)
	rlVar := tailVariance(res.Trace)
	if rlVar > ivVar {
		t.Errorf("RLView tail variance %v exceeds IterView %v", rlVar, ivVar)
	}
}

func tailVariance(trace []float64) float64 {
	n := len(trace) / 2
	tail := trace[len(trace)-n:]
	var mean float64
	for _, v := range tail {
		mean += v
	}
	mean /= float64(len(tail))
	var variance float64
	for _, v := range tail {
		d := v - mean
		variance += d * d
	}
	return variance / float64(len(tail))
}

func TestRLViewPretrainedAgentReused(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	in := randomInstance(rng, 6, 6)
	agent := NewAgent(AgentConfig{}, rand.New(rand.NewSource(14)))
	res := RLView(in, Options{
		InitIterations: 3,
		Epochs:         3,
		Pretrained:     agent,
		Rand:           rand.New(rand.NewSource(15)),
	})
	if res.Agent != agent {
		t.Error("pretrained agent was not reused")
	}
	if agent.MemoryLen() == 0 {
		t.Error("online run should populate the replay memory")
	}
}

func TestAgentSaveLoad(t *testing.T) {
	a := NewAgent(AgentConfig{}, rand.New(rand.NewSource(20)))
	feat := make([]float64, FeatureDim)
	feat[0] = 1
	want := a.Q(feat)
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b := NewAgent(AgentConfig{}, rand.New(rand.NewSource(21)))
	if b.Q(feat) == want {
		t.Fatal("fresh agent accidentally matches; test vacuous")
	}
	if err := b.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if got := b.Q(feat); got != want {
		t.Errorf("Q after load = %v, want %v", got, want)
	}
}

func TestDuelingAgentLearns(t *testing.T) {
	a := NewAgent(AgentConfig{Dueling: true, LearnRate: 0.01, BatchSize: 8}, rand.New(rand.NewSource(30)))
	if a.Net != nil {
		t.Fatal("dueling agent should not expose the plain MLP")
	}
	f0 := make([]float64, FeatureDim)
	f0[0] = 1
	f1 := make([]float64, FeatureDim)
	f1[1] = 1
	state := [][]float64{f0, f1}
	for i := 0; i < 40; i++ {
		a.Remember(Experience{State: state, Action: 0, Reward: 1, NextState: state, Terminal: true})
		a.Remember(Experience{State: state, Action: 1, Reward: 0, NextState: state, Terminal: true})
	}
	for i := 0; i < 400; i++ {
		a.Learn()
	}
	if a.Q(f0) < a.Q(f1)+0.3 {
		t.Errorf("dueling Q(a0)=%v should exceed Q(a1)=%v", a.Q(f0), a.Q(f1))
	}
}

func TestTargetNetworkSync(t *testing.T) {
	a := NewAgent(AgentConfig{TargetSync: 3, LearnRate: 0.05, BatchSize: 4}, rand.New(rand.NewSource(31)))
	if a.target == nil {
		t.Fatal("target network missing")
	}
	f := make([]float64, FeatureDim)
	f[0] = 1
	a.Remember(Experience{State: [][]float64{f}, Action: 0, Reward: 1, NextState: [][]float64{f}})
	// The sync property is about the f64 parameters, so score through
	// the f64 reference path where equality is exact (the default f32
	// scoring mirror only tracks within tolerance; see
	// TestAgentScoringUsesParityPath).
	a.UseF64Scoring(true)
	defer a.UseF64Scoring(false)
	// Before any sync the target diverges from the online net after
	// learning; after TargetSync calls they coincide.
	a.Learn()
	if a.Q(f) == a.targetQ(f) {
		t.Fatal("target should lag the online network after one update")
	}
	a.Learn()
	a.Learn() // third call triggers the sync
	if a.Q(f) != a.targetQ(f) {
		t.Errorf("target not synced: online %v, target %v", a.Q(f), a.targetQ(f))
	}
}

func TestDuelingGradients(t *testing.T) {
	d := NewDuelingQ(rand.New(rand.NewSource(32))).(*DuelingQ)
	feat := make([]float64, FeatureDim)
	for i := range feat {
		feat[i] = 0.1 * float64(i%5)
	}
	loss := func() float64 {
		y, _ := d.Forward(feat)
		return y * y
	}
	for _, p := range d.Params() {
		p.ZeroGrad()
	}
	y, back := d.Forward(feat)
	back(2 * y)
	const eps = 1e-6
	for _, p := range d.Params() {
		for i := range p.Val {
			orig := p.Val[i]
			p.Val[i] = orig + eps
			lp := loss()
			p.Val[i] = orig - eps
			lm := loss()
			p.Val[i] = orig
			want := (lp - lm) / (2 * eps)
			if math.Abs(p.Grad[i]-want) > 1e-4*(1+math.Abs(want)) {
				t.Fatalf("%s grad[%d] = %g, want %g", p, i, p.Grad[i], want)
			}
		}
	}
}

func TestOfflineTrainRoundTrip(t *testing.T) {
	// Collect experiences online, persist to the metadata DB, train an
	// agent offline, and verify it learned the same preference.
	db := catalog.NewMetadataDB()
	src := NewAgent(AgentConfig{}, rand.New(rand.NewSource(33)))
	f0 := make([]float64, FeatureDim)
	f0[0] = 1
	f1 := make([]float64, FeatureDim)
	f1[1] = 1
	state := [][]float64{f0, f1}
	for i := 0; i < 30; i++ {
		src.Remember(Experience{State: state, Action: 0, Reward: 1, NextState: state, Terminal: true})
		src.Remember(Experience{State: state, Action: 1, Reward: 0, NextState: state, Terminal: true})
	}
	src.PersistMemory(db)
	_, ne := db.Counts()
	if ne != 60 {
		t.Fatalf("persisted %d experiences, want 60", ne)
	}
	agent, err := OfflineTrain(db, AgentConfig{LearnRate: 0.01, BatchSize: 8}, 400)
	if err != nil {
		t.Fatal(err)
	}
	if agent.BestAction(state) != 0 {
		t.Error("offline-trained agent did not learn the preference")
	}
	if agent.MemoryLen() != 0 {
		t.Error("offline training should not leave the online memory populated")
	}
}

func TestOfflineTrainErrors(t *testing.T) {
	if _, err := OfflineTrain(catalog.NewMetadataDB(), AgentConfig{}, 5); err == nil {
		t.Error("empty metadata DB should error")
	}
	bad := catalog.NewMetadataDB()
	bad.AddExperience(catalog.Experience{State: []float64{1, 2, 3}}) // not a multiple of FeatureDim
	if _, err := OfflineTrain(bad, AgentConfig{}, 5); err == nil {
		t.Error("malformed state should error")
	}
}

func TestMetadataRoundTripPreservesExperience(t *testing.T) {
	e := Experience{
		State:     [][]float64{seq(0), seq(10)},
		Action:    1,
		Reward:    0.25,
		NextState: [][]float64{seq(20), seq(30)},
		Terminal:  true,
	}
	got, err := FromMetadata(ToMetadata(e))
	if err != nil {
		t.Fatal(err)
	}
	if got.Action != 1 || got.Reward != 0.25 || !got.Terminal {
		t.Errorf("scalar fields lost: %+v", got)
	}
	for i := range e.State {
		for j := range e.State[i] {
			if got.State[i][j] != e.State[i][j] || got.NextState[i][j] != e.NextState[i][j] {
				t.Fatal("feature matrices differ after round trip")
			}
		}
	}
}

func seq(base float64) []float64 {
	out := make([]float64, FeatureDim)
	for i := range out {
		out[i] = base + float64(i)
	}
	return out
}

func TestRLViewDuelingVariantRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	in := randomInstance(rng, 8, 6)
	res := RLView(in, Options{
		InitIterations: 3,
		Epochs:         5,
		Agent:          AgentConfig{Dueling: true, TargetSync: 8},
		Rand:           rand.New(rand.NewSource(35)),
	})
	if !in.Feasible(res.Best) {
		t.Error("dueling RLView produced infeasible state")
	}
	if res.BestUtility <= 0 {
		t.Errorf("dueling RLView best utility %v", res.BestUtility)
	}
}
