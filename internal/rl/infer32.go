package rl

import (
	"autoview/internal/nn"
)

// qMirror is the float32 inference mirror of the agent's Q-network,
// materialized lazily from the trained f64 parameters and dropped
// whenever they change (Learn, Load — see Agent.InvalidateMirror).
// Action scoring (Q, QValues, BestAction) runs on it; everything the
// Learn update touches — the training forward/backward AND the
// Q-learning bootstrap target — stays on the f64 network, so replay
// training remains bit-exact regardless of how actions were scored.
type qMirror struct {
	// Exactly one branch is populated, matching the QNetwork's concrete
	// architecture.
	mlp *nn.MLP32 // plain four-layer DQN

	trunk      *nn.Linear32 // dueling: shared trunk ...
	value, adv *nn.MLP32    // ... feeding the V and A heads
}

// newQMirror materializes the mirror for a known architecture and
// returns nil for QNetwork implementations it has no kernels for (the
// caller then serves f64 — correctness never depends on the mirror).
func newQMirror(q QNetwork) *qMirror {
	switch n := q.(type) {
	case *mlpQ:
		return &qMirror{mlp: nn.NewMLP32(n.net)}
	case *DuelingQ:
		return &qMirror{
			trunk: nn.NewLinear32(n.Trunk),
			value: nn.NewMLP32(n.Value),
			adv:   nn.NewMLP32(n.Adv),
		}
	default:
		return nil
	}
}

// infer scores one action's f32 feature vector.
func (m *qMirror) infer(x nn.Vec32, ar *nn.Arena) float64 {
	if m.mlp != nil {
		return float64(m.mlp.Infer(x, ar)[0])
	}
	h := m.trunk.Infer(x, ar)
	nn.ReLU32(h)
	v := m.value.Infer(h, ar)
	a := m.adv.Infer(h, ar)
	return float64(v[0] + a[0])
}

// mirrorState wraps the pointer so a failed build (unknown architecture)
// is itself cached and does not retry on every call.
type mirrorState struct{ m *qMirror }

// mirror returns the current f32 mirror (nil when the architecture has
// no kernels), building it on first use after an invalidation.
// Concurrent builders race benignly: both materialize from the same
// momentarily-immutable weights and the last store wins.
func (a *Agent) mirror() *qMirror {
	if st := a.m32.Load(); st != nil {
		return st.m
	}
	st := &mirrorState{m: newQMirror(a.QNet)}
	a.m32.Store(st)
	return st.m
}

// InvalidateMirror drops the f32 mirror so the next scoring call
// rebuilds it from the current f64 parameters. Learn and Load call it;
// callers that mutate the network's Params() directly must call it
// themselves before scoring.
func (a *Agent) InvalidateMirror() { a.m32.Store(nil) }

// UseF64Scoring switches Q/QValues/BestAction onto the float64
// reference forward (true) or the float32 mirror (false, the default).
// The escape hatch exists for numerics triage and the parity harness;
// Learn is unaffected either way (always f64).
func (a *Agent) UseF64Scoring(v bool) { a.refF64.Store(v) }

// f32Feat converts one action's features into arena-backed f32 scratch.
func f32Feat(ar *nn.Arena, feat []float64) nn.Vec32 {
	x := ar.Vec32(len(feat))
	nn.F32From(x, feat)
	return x
}
