package rl

import (
	"math/rand"

	"autoview/internal/mvs"
	"autoview/internal/obs"
)

// RLView loop metrics (Algorithm 2): episode progress, the decaying
// exploration rate, the replay-pool size, and how many z-flips each
// episode takes before terminating.
var (
	obsEpisodes   = obs.Default.Counter("rl.episodes", "RLView episodes completed")
	obsFlips      = obs.Default.Counter("rl.flips", "environment steps (z-flips) taken")
	obsEpsilon    = obs.Default.Gauge("rl.epsilon", "exploration rate of the current episode")
	obsReplaySize = obs.Default.Gauge("rl.replay.size", "experiences in the replay memory")
	obsEpFlips    = obs.Default.Histogram("rl.episode.flips", "z-flips per episode", 1, 2, 4, 8, 16, 32, 64, 128, 256, 512)
)

// Options configures RLView (Algorithm 2).
type Options struct {
	// InitIterations is n1, the IterView warm-start budget.
	InitIterations int
	// Epochs is n2, the number of RL episodes.
	Epochs int
	// MemoryThreshold is nm: online fine-tuning starts once the replay
	// memory reaches this size.
	MemoryThreshold int
	// Epsilon is the exploration rate of the behaviour policy. The
	// paper's pseudocode acts greedily; a small ε (default 0.1) is the
	// standard DQN exploration and decays linearly to 0 across epochs.
	Epsilon float64
	// MaxStepsFactor bounds an episode at MaxStepsFactor·|Z| steps
	// (default 2) — Algorithm 2 terminates an episode when t ≥ |Z| and
	// the reward stops improving; the factor caps pathological runs.
	MaxStepsFactor int
	// LearnEvery fine-tunes the DQN every k environment steps (default
	// 1, the paper's per-step update; larger values trade fidelity for
	// speed on big instances).
	LearnEvery int
	// UniformExploration makes the ε-arm pick uniformly random actions
	// instead of sampling Equation 3's flip probabilities (ablation).
	UniformExploration bool
	// Agent carries the DQN hyper-parameters (γ, lr, batch size).
	Agent AgentConfig
	// Rand drives exploration and warm start.
	Rand *rand.Rand
	// Pretrained, when non-nil, is used instead of a fresh agent
	// (offline-trained DQN being fine-tuned online).
	Pretrained *Agent
}

func (o Options) withDefaults() Options {
	if o.InitIterations <= 0 {
		o.InitIterations = 10
	}
	if o.Epochs <= 0 {
		o.Epochs = 90
	}
	if o.MemoryThreshold <= 0 {
		o.MemoryThreshold = 20
	}
	if o.Epsilon < 0 {
		o.Epsilon = 0
	} else if o.Epsilon == 0 { //lint:allow floateq zero value is the unset-field sentinel
		o.Epsilon = 0.1
	}
	if o.MaxStepsFactor <= 0 {
		o.MaxStepsFactor = 2
	}
	if o.LearnEvery <= 0 {
		o.LearnEvery = 1
	}
	return o
}

// Result is the outcome of an RLView run.
type Result struct {
	// Best is the best assignment seen anywhere in the run (including
	// the warm start).
	Best        *mvs.State
	BestUtility float64
	// Final is the last episode's final state.
	Final *mvs.State
	// Trace records utility after every environment step across all
	// epochs, prefixed by the warm start's trace (Figure 10 compares
	// these per-iteration utilities against IterView's).
	Trace []float64
	// Steps counts environment transitions.
	Steps int
	// Agent is the (fine-tuned) DQN, exposed so its replay memory can be
	// persisted to the metadata database for offline training.
	Agent *Agent
}

// RLView implements Algorithm 2: warm-start with IterView, then run n2
// episodes where the DQN picks which z_j to flip, the Y-Opt ILP solver
// plays the environment, and the reward is the utility change. The DQN is
// fine-tuned online from experience replay once the memory reaches nm.
func RLView(in *mvs.Instance, opts Options) *Result {
	opts = opts.withDefaults()
	rng := opts.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}

	// Line 2: warm start.
	warm := mvs.IterView(in, mvs.IterOptions{Iterations: opts.InitIterations, Rand: rng})
	z0 := warm.Best

	// Lines 4-5: replay memory and DQN initialization.
	agent := opts.Pretrained
	if agent == nil {
		agent = NewAgent(opts.Agent, rng)
	}

	nv := in.NumViews()
	bmax := in.MaxBenefits()
	var omax, bmaxSum float64
	for _, o := range in.Overhead {
		omax += o
	}
	for _, b := range bmax {
		bmaxSum += b
	}

	res := &Result{Agent: agent}
	res.Trace = append(res.Trace, warm.Trace...)
	res.Best = z0.Clone()
	res.BestUtility = in.Utility(z0)

	maxSteps := opts.MaxStepsFactor * nv
	if maxSteps < 1 {
		maxSteps = 1
	}

	for ep := 0; ep < opts.Epochs; ep++ {
		epsilon := opts.Epsilon * (1 - float64(ep)/float64(opts.Epochs))
		obsEpsilon.Set(epsilon)
		// Line 7: e_0 = ⟨Z_0, Y_0⟩.
		st := z0.Clone()
		y, bcur := in.BestY(st.Z)
		st.Y = y
		rPrev := in.Utility(st)

		feats := Features(in, st, bcur, bmax, omax, bmaxSum)
		var lastReward float64
		for t := 0; ; t++ {
			// Line 10: a_t = argmax Q(e_t). The ε-exploration arm
			// samples from Equation 3's flip probabilities, so
			// exploration follows IterView's proposal distribution
			// rather than uniform noise.
			var action int
			switch {
			case rng.Float64() >= epsilon:
				action = agent.BestAction(feats)
			case opts.UniformExploration:
				action = rng.Intn(nv)
			default:
				action = sampleFlip(rng, mvs.FlipProbabilities(in, st, bcur))
			}
			// Lines 10-12: flip and let the ILP solver respond.
			st.Z[action] = !st.Z[action]
			in.RecomputeYForView(st, bcur, action)
			rNext := in.Utility(st)
			lastReward = rNext - rPrev

			nextFeats := Features(in, st, bcur, bmax, omax, bmaxSum)
			terminal := !(t+1 < nv || lastReward > 0) || t+1 >= maxSteps
			// Line 14: store the experience.
			agent.Remember(Experience{
				State:     feats,
				Action:    action,
				Reward:    lastReward,
				NextState: nextFeats,
				Terminal:  terminal,
			})
			// Line 17: fine-tune once the pool is large enough.
			if agent.MemoryLen() >= opts.MemoryThreshold && res.Steps%opts.LearnEvery == 0 {
				agent.Learn()
			}

			res.Steps++
			res.Trace = append(res.Trace, rNext)
			if rNext > res.BestUtility {
				res.BestUtility = rNext
				res.Best = st.Clone()
			}
			rPrev = rNext
			feats = nextFeats
			if terminal {
				obsEpisodes.Inc()
				obsFlips.Add(int64(t + 1))
				obsEpFlips.Observe(float64(t + 1))
				obsReplaySize.Set(float64(agent.MemoryLen()))
				break
			}
		}
		res.Final = st
	}
	if res.Final == nil {
		res.Final = z0.Clone()
	}
	return res
}

// sampleFlip draws an action proportional to the flip probabilities,
// falling back to uniform when all probabilities vanish.
func sampleFlip(rng *rand.Rand, probs []float64) int {
	var total float64
	for _, p := range probs {
		total += p
	}
	if total <= 0 {
		return rng.Intn(len(probs))
	}
	r := rng.Float64() * total
	for j, p := range probs {
		r -= p
		if r <= 0 {
			return j
		}
	}
	return len(probs) - 1
}
