package rl

import (
	"fmt"

	"autoview/internal/catalog"
)

// ToMetadata flattens a replay tuple for the metadata database (the paper
// stores the memory pool M there for offline DQN training).
func ToMetadata(e Experience) catalog.Experience {
	return catalog.Experience{
		State:     flatten(e.State),
		Action:    e.Action,
		Reward:    e.Reward,
		NextState: flatten(e.NextState),
		Terminal:  e.Terminal,
	}
}

// FromMetadata reshapes a stored tuple back into per-action feature
// matrices. The action count is recovered from the vector length.
func FromMetadata(ce catalog.Experience) (Experience, error) {
	state, err := unflatten(ce.State)
	if err != nil {
		return Experience{}, fmt.Errorf("rl: state: %w", err)
	}
	next, err := unflatten(ce.NextState)
	if err != nil {
		return Experience{}, fmt.Errorf("rl: next state: %w", err)
	}
	return Experience{
		State:     state,
		Action:    ce.Action,
		Reward:    ce.Reward,
		NextState: next,
		Terminal:  ce.Terminal,
	}, nil
}

func flatten(m [][]float64) []float64 {
	out := make([]float64, 0, len(m)*FeatureDim)
	for _, row := range m {
		out = append(out, row...)
	}
	return out
}

func unflatten(flat []float64) ([][]float64, error) {
	if len(flat)%FeatureDim != 0 {
		return nil, fmt.Errorf("length %d is not a multiple of %d", len(flat), FeatureDim)
	}
	n := len(flat) / FeatureDim
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		out[i] = flat[i*FeatureDim : (i+1)*FeatureDim]
	}
	return out, nil
}

// PersistMemory appends the agent's replay buffer to the metadata
// database.
func (a *Agent) PersistMemory(db *catalog.MetadataDB) {
	for _, e := range a.mem {
		db.AddExperience(ToMetadata(e))
	}
}

// OfflineTrain builds an agent and trains it from the metadata database's
// stored replay pool for the given number of updates — the paper's
// offline DQN training, after which the agent is fine-tuned online by
// passing it as Options.Pretrained to RLView.
func OfflineTrain(db *catalog.MetadataDB, cfg AgentConfig, updates int) (*Agent, error) {
	stored := db.Experiences()
	if len(stored) == 0 {
		return nil, fmt.Errorf("rl: metadata database holds no experiences")
	}
	data := make([]Experience, 0, len(stored))
	for _, ce := range stored {
		e, err := FromMetadata(ce)
		if err != nil {
			return nil, err
		}
		data = append(data, e)
	}
	agent := NewAgent(cfg, nil)
	agent.LearnFrom(data, updates)
	return agent, nil
}
