package rl

import (
	"math/rand"
	"testing"

	"autoview/internal/nn"
)

// TestQNetworkInferParity pins the action-scoring fast path: Infer must
// return exactly what Forward returns, for both architectures, across
// many random inputs and with a reused arena.
func TestQNetworkInferParity(t *testing.T) {
	nets := map[string]func(*rand.Rand) QNetwork{
		"mlp":     NewMLPQ,
		"dueling": NewDuelingQ,
	}
	for _, name := range []string{"mlp", "dueling"} {
		q := nets[name](rand.New(rand.NewSource(11)))
		a := nn.NewArena()
		rng := rand.New(rand.NewSource(12))
		for trial := 0; trial < 120; trial++ {
			feat := make(nn.Vec, FeatureDim)
			for i := range feat {
				feat[i] = rng.NormFloat64()
			}
			want, _ := q.Forward(feat)
			a.Reset()
			got := q.Infer(feat, a)
			if got != want { //lint:allow floateq bit-identity is the property under test
				t.Fatalf("%s trial %d: Infer = %v, Forward = %v", name, trial, got, want)
			}
			a.Reset()
			if again := q.Infer(feat, a); again != got { //lint:allow floateq bit-identity is the property under test
				t.Fatalf("%s trial %d: warm-arena Infer drifted: %v != %v", name, trial, again, got)
			}
		}
	}
}

// TestAgentScoringUsesParityPath cross-checks the agent's scoring
// surface (Q, QValues, BestAction) against direct Forward evaluation.
func TestAgentScoringUsesParityPath(t *testing.T) {
	for _, dueling := range []bool{false, true} {
		ag := NewAgent(AgentConfig{Dueling: dueling, Seed: 5}, nil)
		rng := rand.New(rand.NewSource(6))
		feats := make([][]float64, 9)
		want := make([]float64, len(feats))
		bestJ, bestQ := 0, 0.0
		for j := range feats {
			feats[j] = make([]float64, FeatureDim)
			for i := range feats[j] {
				feats[j][i] = rng.NormFloat64()
			}
			want[j], _ = ag.QNet.Forward(feats[j])
			if j == 0 || want[j] > bestQ {
				bestJ, bestQ = j, want[j]
			}
		}
		for j := range feats {
			if got := ag.Q(feats[j]); got != want[j] { //lint:allow floateq bit-identity is the property under test
				t.Fatalf("dueling=%v: Q(%d) = %v, Forward = %v", dueling, j, got, want[j])
			}
			if got := ag.targetQ(feats[j]); got != want[j] { //lint:allow floateq bit-identity is the property under test
				t.Fatalf("dueling=%v: targetQ(%d) = %v, Forward = %v", dueling, j, got, want[j])
			}
		}
		qv := ag.QValues(feats)
		for j := range want {
			if qv[j] != want[j] { //lint:allow floateq bit-identity is the property under test
				t.Fatalf("dueling=%v: QValues[%d] = %v, Forward = %v", dueling, j, qv[j], want[j])
			}
		}
		if got := ag.BestAction(feats); got != bestJ {
			t.Fatalf("dueling=%v: BestAction = %d, want %d (q=%v)", dueling, got, bestJ, bestQ)
		}
	}
}
