package rl

import (
	"math/rand"
	"testing"

	"autoview/internal/nn"
)

// TestQNetworkInferParity pins the action-scoring fast path: Infer must
// return exactly what Forward returns, for both architectures, across
// many random inputs and with a reused arena.
func TestQNetworkInferParity(t *testing.T) {
	nets := map[string]func(*rand.Rand) QNetwork{
		"mlp":     NewMLPQ,
		"dueling": NewDuelingQ,
	}
	for _, name := range []string{"mlp", "dueling"} {
		q := nets[name](rand.New(rand.NewSource(11)))
		a := nn.NewArena()
		rng := rand.New(rand.NewSource(12))
		for trial := 0; trial < 120; trial++ {
			feat := make(nn.Vec, FeatureDim)
			for i := range feat {
				feat[i] = rng.NormFloat64()
			}
			want, _ := q.Forward(feat)
			a.Reset()
			got := q.Infer(feat, a)
			if got != want { //lint:allow floateq bit-identity is the property under test
				t.Fatalf("%s trial %d: Infer = %v, Forward = %v", name, trial, got, want)
			}
			a.Reset()
			if again := q.Infer(feat, a); again != got { //lint:allow floateq bit-identity is the property under test
				t.Fatalf("%s trial %d: warm-arena Infer drifted: %v != %v", name, trial, again, got)
			}
		}
	}
}

// f32 scoring parity budget against the f64 training forward; same
// rationale and headroom as widedeep's predict budget (observed worst
// case on these networks is ~1e-7 relative). Documented in
// PERFORMANCE.md.
const (
	scoreRTol = 1e-5
	scoreATol = 1e-6
)

// TestAgentScoringUsesParityPath cross-checks the agent's scoring
// surface (Q, QValues, BestAction) against direct Forward evaluation,
// for both routing modes: the f64 reference path must be bit-identical
// to Forward, the default f32 mirror path must agree within the pinned
// tolerance while ranking actions identically — and targetQ (the Learn
// bootstrap) must stay bit-exact f64 regardless of the scoring mode.
func TestAgentScoringUsesParityPath(t *testing.T) {
	for _, dueling := range []bool{false, true} {
		ag := NewAgent(AgentConfig{Dueling: dueling, Seed: 5}, nil)
		rng := rand.New(rand.NewSource(6))
		feats := make([][]float64, 9)
		want := make([]float64, len(feats))
		bestJ, bestQ := 0, 0.0
		for j := range feats {
			feats[j] = make([]float64, FeatureDim)
			for i := range feats[j] {
				feats[j][i] = rng.NormFloat64()
			}
			want[j], _ = ag.QNet.Forward(feats[j])
			if j == 0 || want[j] > bestQ {
				bestJ, bestQ = j, want[j]
			}
		}

		// f64 reference path: bit-identical, kernel unchanged.
		ag.UseF64Scoring(true)
		for j := range feats {
			if got := ag.Q(feats[j]); got != want[j] { //lint:allow floateq bit-identity of the f64 reference path is the property under test
				t.Fatalf("dueling=%v: f64 Q(%d) = %v, Forward = %v", dueling, j, got, want[j])
			}
		}
		qv := ag.QValues(feats)
		for j := range want {
			if qv[j] != want[j] { //lint:allow floateq bit-identity of the f64 reference path is the property under test
				t.Fatalf("dueling=%v: f64 QValues[%d] = %v, Forward = %v", dueling, j, qv[j], want[j])
			}
		}
		if got := ag.BestAction(feats); got != bestJ {
			t.Fatalf("dueling=%v: f64 BestAction = %d, want %d (q=%v)", dueling, got, bestJ, bestQ)
		}

		// f32 mirror path: pinned tolerance, identical ranking,
		// deterministic across warm-arena replays.
		ag.UseF64Scoring(false)
		for j := range feats {
			got := ag.Q(feats[j])
			if !nn.AlmostEqual(got, want[j], scoreRTol, scoreATol) {
				t.Fatalf("dueling=%v: f32 Q(%d) = %v, Forward = %v (diff %g) outside rtol %g / atol %g",
					dueling, j, got, want[j], got-want[j], scoreRTol, scoreATol)
			}
			if again := ag.Q(feats[j]); again != got { //lint:allow floateq warm-arena determinism of the f32 path is the property under test
				t.Fatalf("dueling=%v: warm-arena f32 Q(%d) drifted: %v != %v", dueling, j, again, got)
			}
		}
		qv32 := ag.QValues(feats)
		for j := range want {
			if !nn.AlmostEqual(qv32[j], want[j], scoreRTol, scoreATol) {
				t.Fatalf("dueling=%v: f32 QValues[%d] = %v, Forward = %v outside tolerance", dueling, j, qv32[j], want[j])
			}
		}
		if got := ag.BestAction(feats); got != bestJ {
			t.Fatalf("dueling=%v: f32 BestAction = %d, want %d — action ranking flipped", dueling, got, bestJ)
		}

		// The Learn bootstrap never routes through the mirror.
		for j := range feats {
			if got := ag.targetQ(feats[j]); got != want[j] { //lint:allow floateq bit-identity of the f64 bootstrap is the property under test
				t.Fatalf("dueling=%v: targetQ(%d) = %v, Forward = %v", dueling, j, got, want[j])
			}
		}
	}
}
