// Package rl implements the paper's reinforcement-learning view selection
// (Section V-B): the iterative ILP optimization is cast as an MDP whose
// state is e=⟨Z,Y⟩, whose actions flip one z_j, whose environment is the
// Y-Opt ILP solver, and whose reward is the utility change. A DQN with
// four fully connected layers (16, 64, 16, 1 neurons, ReLU) predicts
// Q(e,a); RLView (Algorithm 2) initializes from IterView and fine-tunes
// the network online from an experience-replay memory.
package rl

import (
	"io"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"autoview/internal/mvs"
	"autoview/internal/nn"
	"autoview/internal/obs"
)

// DQN update metrics: one rl.learn.count tick (and, when obs is enabled,
// one rl.learn span observation) per replay-batch update.
var (
	obsLearnCount = obs.Default.Counter("rl.learn.count", "DQN replay-batch updates")
	obsLearnLoss  = obs.Default.Gauge("rl.learn.loss", "mean loss of the last DQN update")
)

// FeatureDim is the width of the per-action (e,a) feature vector fed to
// the Q-network. The paper's tiny layer sizes (16-64-16-1) imply a compact
// featurized input rather than raw |Z|+|Q|·|Z| bits; we encode the action's
// view statistics plus global state summaries.
const FeatureDim = 10

// Features computes the (e, a_j) input for every action j. st/bcur
// describe the current state; in supplies the constants.
func Features(in *mvs.Instance, st *mvs.State, bcur []float64, bmax []float64, omax, bmaxSum float64) [][]float64 {
	nv := in.NumViews()
	var ocur, bcurSum float64
	selected := 0
	for j, z := range st.Z {
		if z {
			ocur += in.Overhead[j]
			selected++
		}
		bcurSum += bcur[j]
	}
	utility := bcurSum - ocur
	scale := bmaxSum
	if scale <= 0 {
		scale = 1
	}
	out := make([][]float64, nv)
	for j := 0; j < nv; j++ {
		z := 0.0
		if st.Z[j] {
			z = 1
		}
		out[j] = []float64{
			z,
			safeRatio(in.Overhead[j], omax),
			safeRatio(bmax[j], bmaxSum),
			safeRatio(bcur[j], bcurSum),
			(bmax[j] - in.Overhead[j]) / scale,
			safeRatio(ocur, omax),
			safeRatio(bcurSum, bmaxSum),
			float64(selected) / float64(nv),
			utility / scale,
			1, // bias
		}
	}
	return out
}

func safeRatio(a, b float64) float64 {
	if b <= 0 {
		return 0
	}
	return a / b
}

// Experience is one replay tuple ⟨e_t, a_t, r_t, e_{t+1}⟩, stored as the
// per-action feature matrices of both states.
type Experience struct {
	State     [][]float64
	Action    int
	Reward    float64
	NextState [][]float64
	Terminal  bool
}

// AgentConfig configures the DQN.
type AgentConfig struct {
	Gamma     float64 // reward decay rate γ
	LearnRate float64
	BatchSize int
	// MemoryCap bounds the replay buffer; oldest entries are evicted.
	MemoryCap int
	// Dueling switches to the dueling architecture (Q = V + A) the
	// paper cites as reference [42]. Default is the plain four-layer
	// network of Section V-B2.
	Dueling bool
	// TargetSync, when positive, maintains a frozen target network for
	// the Q-learning bootstrap, synced every TargetSync Learn calls —
	// the standard DQN stabilization. Zero bootstraps from the online
	// network, as in the paper's pseudocode.
	TargetSync int
	// Parallelism is the number of data-parallel workers per replay
	// mini-batch (nn.Trainer). 0 selects runtime.NumCPU(); 1 runs
	// serially. Results are bit-for-bit identical for every setting.
	Parallelism int
	Seed        int64
}

func (c AgentConfig) withDefaults() AgentConfig {
	if c.Gamma <= 0 {
		c.Gamma = 0.9
	}
	if c.LearnRate <= 0 {
		c.LearnRate = 0.001
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 16
	}
	if c.MemoryCap <= 0 {
		c.MemoryCap = 50_000
	}
	return c
}

// Agent is the DQN: μ(e,a|θ) implemented with four fully connected layers
// of 16, 64, 16 and 1 neurons (Section V-B2), or optionally the dueling
// architecture.
type Agent struct {
	// Net is the plain MLP when the default architecture is used (nil
	// under Dueling); QNet is always the active network.
	Net  *nn.MLP
	QNet QNetwork
	Cfg  AgentConfig

	target     QNetwork // frozen bootstrap target (nil unless TargetSync > 0)
	learnCalls int

	opt *nn.Adam
	mem []Experience
	rng *rand.Rand

	// trainer shards replay-batch gradient computation (lazily built);
	// batch and batchN stage the sampled experiences for its workers.
	trainer *nn.Trainer
	batch   []Experience
	batchN  float64

	// arenas pools inference scratch for the forward-only Q evaluation
	// fast path (action scoring and the Learn bootstrap target, which
	// the trainer's workers evaluate concurrently). spareArena pins one
	// warm arena across GC cycles, which empty the sync.Pool wholesale.
	arenas     sync.Pool
	spareArena atomic.Pointer[nn.Arena]

	// m32 caches the f32 scoring mirror (infer32.go); refF64 forces the
	// f64 reference path for scoring (UseF64Scoring).
	m32    atomic.Pointer[mirrorState]
	refF64 atomic.Bool
}

// NewAgent allocates an initialized agent.
func NewAgent(cfg AgentConfig, rng *rand.Rand) *Agent {
	cfg = cfg.withDefaults()
	if rng == nil {
		rng = rand.New(rand.NewSource(cfg.Seed))
	}
	a := &Agent{
		Cfg: cfg,
		opt: nn.NewAdam(cfg.LearnRate),
		rng: rng,
	}
	if cfg.Dueling {
		a.QNet = NewDuelingQ(rng)
	} else {
		mq := NewMLPQ(rng).(*mlpQ)
		a.Net = mq.net
		a.QNet = mq
	}
	if cfg.TargetSync > 0 {
		a.target = a.QNet.Clone()
	}
	a.opt.Clip = 1
	return a
}

// getArena hands out a pooled inference arena (one per concurrent
// evaluator; warm arenas make steady-state Q evaluation allocation-free).
// The pinned spare survives garbage collections, so serial scoring stays
// allocation-free even in GC-heavy processes.
func (a *Agent) getArena() *nn.Arena {
	if ar := a.spareArena.Swap(nil); ar != nil {
		return ar
	}
	if ar, ok := a.arenas.Get().(*nn.Arena); ok {
		return ar
	}
	return nn.NewArena()
}

// putArena returns an arena to the spare slot or the overflow pool.
func (a *Agent) putArena(ar *nn.Arena) {
	if a.spareArena.CompareAndSwap(nil, ar) {
		return
	}
	a.arenas.Put(ar)
}

// Q evaluates μ(e,a|θ) for one action's features through the
// forward-only fast path: the f32 scoring mirror by default, the f64
// reference forward (bit-identical to training) under UseF64Scoring or
// when no mirror exists for the architecture.
func (a *Agent) Q(feat []float64) float64 {
	ar := a.getArena()
	ar.Reset()
	var y float64
	if m := a.scorer(); m != nil {
		y = m.infer(f32Feat(ar, feat), ar)
	} else {
		y = a.QNet.Infer(feat, ar)
	}
	a.putArena(ar)
	return y
}

// scorer returns the f32 mirror to score with, or nil when scoring must
// run the f64 reference path.
func (a *Agent) scorer() *qMirror {
	if a.refF64.Load() {
		return nil
	}
	return a.mirror()
}

// targetQ evaluates the Q-learning bootstrap: the frozen target when
// configured, else the online network — always through the f64 forward,
// never the scoring mirror, so Learn's updates are bit-exact however
// actions were scored.
func (a *Agent) targetQ(feat []float64) float64 {
	net := a.target
	if net == nil {
		net = a.QNet
	}
	ar := a.getArena()
	ar.Reset()
	y := net.Infer(feat, ar)
	a.putArena(ar)
	return y
}

// QValues evaluates the Q-vector Q(e) = [μ(e,a_1), ..., μ(e,a_n)],
// reusing one inference arena across all actions.
func (a *Agent) QValues(feats [][]float64) []float64 {
	out := make([]float64, len(feats))
	ar := a.getArena()
	m := a.scorer()
	for j, f := range feats {
		ar.Reset()
		if m != nil {
			out[j] = m.infer(f32Feat(ar, f), ar)
		} else {
			out[j] = a.QNet.Infer(f, ar)
		}
	}
	a.putArena(ar)
	return out
}

// BestAction returns argmax_i Q(e)[i], reusing one inference arena
// across all actions.
func (a *Agent) BestAction(feats [][]float64) int {
	best, bestQ := 0, math.Inf(-1)
	ar := a.getArena()
	m := a.scorer()
	for j, f := range feats {
		ar.Reset()
		var q float64
		if m != nil {
			q = m.infer(f32Feat(ar, f), ar)
		} else {
			q = a.QNet.Infer(f, ar)
		}
		if q > bestQ {
			best, bestQ = j, q
		}
	}
	a.putArena(ar)
	return best
}

// Remember appends an experience, evicting the oldest past capacity.
func (a *Agent) Remember(e Experience) {
	a.mem = append(a.mem, e)
	if len(a.mem) > a.Cfg.MemoryCap {
		a.mem = a.mem[len(a.mem)-a.Cfg.MemoryCap:]
	}
}

// MemoryLen returns the replay buffer size.
func (a *Agent) MemoryLen() int { return len(a.mem) }

// Memory returns the replay buffer (shared slice; callers must not
// mutate). Used for persisting the pool to the metadata database.
func (a *Agent) Memory() []Experience { return a.mem }

// Learn runs one DQN update (the paper's function DQN): sample a batch,
// compute Q'(e_t,a_t) = r_t + γ·max_i Q(e_{t+1})[i], and minimize the
// squared error against Q(e_t,a_t). The batch is sampled serially (so
// RNG consumption matches the serial implementation) and its gradients
// are computed data-parallel across the trainer's workers. It returns
// the mean batch loss.
func (a *Agent) Learn() float64 {
	if len(a.mem) == 0 {
		return 0
	}
	defer obs.StartSpan("rl.learn")()
	n := a.Cfg.BatchSize
	if n > len(a.mem) {
		n = len(a.mem)
	}
	if a.trainer == nil {
		a.trainer = nn.NewTrainer(a.QNet.Params(), a.Cfg.Parallelism, a.bindWorker)
	}
	a.batch = a.batch[:0]
	for b := 0; b < n; b++ {
		a.batch = append(a.batch, a.mem[a.rng.Intn(len(a.mem))])
	}
	a.batchN = float64(n)
	loss := a.trainer.Step(n)
	a.opt.Step(a.QNet.Params())
	a.InvalidateMirror() // weights moved; the scoring mirror is stale
	a.learnCalls++
	if a.target != nil && a.learnCalls%a.Cfg.TargetSync == 0 {
		copyParams(a.target.Params(), a.QNet.Params())
	}
	obsLearnCount.Inc()
	obsLearnLoss.Set(loss / float64(n))
	return loss / float64(n)
}

// bindWorker builds one data-parallel training worker: a Q-network
// replica over shared weights plus the per-experience TD-error runner.
// The bootstrap target is evaluated through the frozen target network
// (or the online network) — pure reads, safe across workers.
func (a *Agent) bindWorker() ([]*nn.Param, nn.SampleFunc) {
	rep := a.QNet.ShareWeights()
	run := func(i int) float64 {
		e := a.batch[i]
		target := e.Reward
		if !e.Terminal {
			best := math.Inf(-1)
			for _, f := range e.NextState {
				if q := a.targetQ(f); q > best {
					best = q
				}
			}
			target += a.Cfg.Gamma * best
		}
		y, back := rep.Forward(e.State[e.Action])
		d := y - target
		back(2 * d / a.batchN)
		return d * d
	}
	return rep.Params(), run
}

// Save persists the Q-network weights.
func (a *Agent) Save(w io.Writer) error {
	return SaveQNetwork(w, a.QNet)
}

// Load restores weights saved by Save into an identically configured
// agent. The target network (when present) syncs to the loaded weights.
func (a *Agent) Load(r io.Reader) error {
	if err := LoadQNetwork(r, a.QNet); err != nil {
		return err
	}
	if a.target != nil {
		copyParams(a.target.Params(), a.QNet.Params())
	}
	a.InvalidateMirror() // loaded weights obsolete any cached mirror
	return nil
}

// LearnFrom trains offline from an external replay dataset for the given
// number of updates (the paper's offline DQN training from the metadata
// database).
func (a *Agent) LearnFrom(data []Experience, updates int) float64 {
	saved := a.mem
	a.mem = data
	var last float64
	for i := 0; i < updates; i++ {
		last = a.Learn()
	}
	a.mem = saved
	return last
}
