package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// RecordType tags a WAL record's payload.
type RecordType uint8

const (
	// RecordIngest carries a batch of ingested query SQL texts
	// (payload: ingestPayload JSON).
	RecordIngest RecordType = 1
	// RecordModel marks a model swap (payload: ModelRecord JSON).
	RecordModel RecordType = 2
	// RecordViewSet marks a view-set rotation (payload: the serving
	// layer's ViewSet JSON, opaque to this package).
	RecordViewSet RecordType = 3
)

func (t RecordType) valid() bool { return t >= RecordIngest && t <= RecordViewSet }

// Segment header: 4-byte magic, 1-byte format version, 3 reserved zero
// bytes. Replay rejects unknown versions loudly instead of guessing.
var segmentMagic = [4]byte{'A', 'V', 'W', 'L'}

const (
	walFormatVersion = 1
	headerSize       = 8
	// frameOverhead is the fixed cost per record: u32 length (of
	// type+payload) + u32 CRC32C (over type+payload).
	frameOverhead = 8
	// maxRecordLen bounds a single record (64 MiB); longer lengths in a
	// frame header mean corruption, not a huge record.
	maxRecordLen = 64 << 20
)

// crcTable is the Castagnoli polynomial (hardware-accelerated CRC32C).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

var (
	// errTornRecord reports a frame that does not checksum or extend
	// past the data: the expected shape of a crash mid-append.
	errTornRecord = errors.New("durable: torn or corrupt record")
	// ErrBadSegment reports a segment whose header is missing or from
	// an unknown format version.
	ErrBadSegment = errors.New("durable: bad WAL segment header")
	// ErrGap reports records missing between segments — real corruption
	// (a torn tail can only be at the end of the newest segment).
	ErrGap = errors.New("durable: gap in WAL record sequence")
)

// appendHeader appends a fresh segment header to buf.
func appendHeader(buf []byte) []byte {
	buf = append(buf, segmentMagic[:]...)
	return append(buf, walFormatVersion, 0, 0, 0)
}

// checkHeader validates a segment's first headerSize bytes.
func checkHeader(data []byte) error {
	if len(data) < headerSize {
		return fmt.Errorf("%w: %d-byte file", ErrBadSegment, len(data))
	}
	if [4]byte(data[:4]) != segmentMagic {
		return fmt.Errorf("%w: bad magic %q", ErrBadSegment, data[:4])
	}
	if v := data[4]; v != walFormatVersion {
		return fmt.Errorf("%w: format version %d (this build reads %d)", ErrBadSegment, v, walFormatVersion)
	}
	return nil
}

// appendFrame appends one framed record to buf:
// [u32 len(type+payload)][u32 crc32c(type+payload)][type][payload].
func appendFrame(buf []byte, t RecordType, payload []byte) []byte {
	n := 1 + len(payload)
	var hdr [frameOverhead]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(n))
	crc := crc32.Update(0, crcTable, []byte{byte(t)})
	crc = crc32.Update(crc, crcTable, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	buf = append(buf, hdr[:]...)
	buf = append(buf, byte(t))
	return append(buf, payload...)
}

// decodeFrame parses the first frame of data. It returns the record and
// the total bytes consumed, or errTornRecord when the frame is
// incomplete, fails its checksum, or carries an unknown type — all of
// which replay treats as the torn tail.
func decodeFrame(data []byte) (t RecordType, payload []byte, consumed int, err error) {
	if len(data) < frameOverhead+1 {
		return 0, nil, 0, errTornRecord
	}
	n := binary.LittleEndian.Uint32(data[0:4])
	if n < 1 || n > maxRecordLen || uint64(frameOverhead)+uint64(n) > uint64(len(data)) {
		return 0, nil, 0, errTornRecord
	}
	body := data[frameOverhead : frameOverhead+int(n)]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(data[4:8]) {
		return 0, nil, 0, errTornRecord
	}
	t = RecordType(body[0])
	if !t.valid() {
		return 0, nil, 0, errTornRecord
	}
	return t, body[1:], frameOverhead + int(n), nil
}

// scanSegment walks a segment's records after its header, calling fn for
// each intact one. It returns the byte offset just past the last intact
// record (the truncation point for a torn tail) and whether the segment
// ended cleanly (no trailing bytes past the last intact record). A bad
// header fails with ErrBadSegment; fn errors abort the scan.
func scanSegment(data []byte, fn func(t RecordType, payload []byte) error) (consumed int, clean bool, err error) {
	if err := checkHeader(data); err != nil {
		return 0, false, err
	}
	off := headerSize
	for off < len(data) {
		t, payload, n, err := decodeFrame(data[off:])
		if err != nil {
			return off, false, nil // torn tail starts here
		}
		if fn != nil {
			if err := fn(t, payload); err != nil {
				return off, false, err
			}
		}
		off += n
	}
	return off, true, nil
}
