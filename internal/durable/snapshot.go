package durable

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"autoview/internal/obs"
)

// snapFormatVersion guards the snapshot JSON schema.
const snapFormatVersion = 1

// Snapshot is a point-in-time capture of the advisor's serving state,
// covering every WAL record with LSN <= LSN. Recovery loads the newest
// intact snapshot and replays only the records after it.
type Snapshot struct {
	FormatVersion int       `json:"format_version"`
	LSN           uint64    `json:"lsn"`
	CreatedAt     time.Time `json:"created_at"`

	// WindowSQL is the rolling window's contents oldest-first, as the
	// SQL each query was ingested with; re-parsing reconstructs the
	// window byte-identically. WindowTotal is the lifetime ingest count.
	WindowSQL   []string `json:"window_sql"`
	WindowTotal uint64   `json:"window_total"`

	// ViewSet is the serving layer's versioned view set, opaque JSON
	// (nil when nothing has been advised yet).
	ViewSet json.RawMessage `json:"view_set,omitempty"`

	// ModelPath names the W-D checkpoint (relative to the data dir)
	// behind the active model, with its cost scale and version. Empty
	// when no model has been published.
	ModelPath    string  `json:"model_path,omitempty"`
	ModelScale   float64 `json:"model_scale,omitempty"`
	ModelVersion int     `json:"model_version,omitempty"`
}

// ModelRecord is the RecordModel payload: the durable pointer one model
// swap publishes.
type ModelRecord struct {
	Path    string  `json:"path"` // relative to the data dir
	Scale   float64 `json:"scale"`
	Version int     `json:"version"`
}

// ingestPayload is the RecordIngest payload.
type ingestPayload struct {
	SQLs []string `json:"sqls"`
}

func snapshotName(lsn uint64) string { return fmt.Sprintf("snap-%016x.json", lsn) }

// parseSnapshotName extracts the LSN from a snapshot file name.
func parseSnapshotName(name string) (uint64, bool) {
	rest, ok := strings.CutPrefix(name, "snap-")
	if !ok {
		return 0, false
	}
	rest, ok = strings.CutSuffix(rest, ".json")
	if !ok {
		return 0, false
	}
	lsn, err := strconv.ParseUint(rest, 16, 64)
	return lsn, err == nil
}

// parseSegmentName extracts the first LSN from a segment file name.
func parseSegmentName(name string) (uint64, bool) {
	rest, ok := strings.CutPrefix(name, "wal-")
	if !ok {
		return 0, false
	}
	rest, ok = strings.CutSuffix(rest, ".log")
	if !ok {
		return 0, false
	}
	lsn, err := strconv.ParseUint(rest, 16, 64)
	return lsn, err == nil
}

// writeSnapshot persists snap atomically: marshal to a .tmp file, fsync
// it, rename into place, and fsync the directory so the name survives a
// crash. Either the complete snapshot is visible under its final name or
// it never existed.
func writeSnapshot(dir string, snap *Snapshot) error {
	snap.FormatVersion = snapFormatVersion
	data, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("durable: marshal snapshot: %w", err)
	}
	final := filepath.Join(dir, snapshotName(snap.LSN))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write(data)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		_ = os.Remove(tmp) // best effort; the write already failed
		return fmt.Errorf("durable: write snapshot: %w", werr)
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	obsSnapshots.Inc()
	obsSnapBytes.Set(float64(len(data)))
	obsSnapLSN.Set(float64(snap.LSN))
	return nil
}

// loadSnapshot reads and validates one snapshot file.
func loadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("durable: snapshot %s: %w", filepath.Base(path), err)
	}
	if snap.FormatVersion != snapFormatVersion {
		return nil, fmt.Errorf("durable: snapshot %s: format version %d (this build reads %d)",
			filepath.Base(path), snap.FormatVersion, snapFormatVersion)
	}
	return &snap, nil
}

// listByLSN returns the LSNs parsed from directory entries matching the
// given parser, ascending.
func listByLSN(dir string, parse func(string) (uint64, bool)) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var lsns []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if lsn, ok := parse(e.Name()); ok {
			lsns = append(lsns, lsn)
		}
	}
	sort.Slice(lsns, func(i, j int) bool { return lsns[i] < lsns[j] })
	return lsns, nil
}

// latestSnapshot loads the newest intact snapshot, falling back to older
// generations when the newest is unreadable (a half-written .tmp never
// has the final name, so this is defense in depth against bit rot, not
// the crash path). Returns nil when no snapshot loads.
func latestSnapshot(dir string) *Snapshot {
	lsns, err := listByLSN(dir, parseSnapshotName)
	if err != nil {
		return nil
	}
	for i := len(lsns) - 1; i >= 0; i-- {
		snap, err := loadSnapshot(filepath.Join(dir, snapshotName(lsns[i])))
		if err == nil {
			return snap
		}
		obs.Warn("durable.snapshot", "event", "skip_corrupt", "lsn", lsns[i], "err", err)
	}
	return nil
}

// pruneSnapshots keeps the newest retain snapshot generations plus every
// WAL segment still needed to recover from the oldest retained one, and
// deletes checkpoints older than any retained snapshot references.
func pruneSnapshots(dir string, retain int, modelKeep func(version int) bool) error {
	snaps, err := listByLSN(dir, parseSnapshotName)
	if err != nil {
		return err
	}
	if len(snaps) <= retain {
		return nil
	}
	for _, lsn := range snaps[:len(snaps)-retain] {
		if err := os.Remove(filepath.Join(dir, snapshotName(lsn))); err != nil && !errors.Is(err, os.ErrNotExist) {
			return err
		}
	}
	oldest := snaps[len(snaps)-retain]

	// A segment is deletable when the segment after it starts at or
	// below oldest+1: every record in it is then covered by the oldest
	// retained snapshot.
	segs, err := listByLSN(dir, parseSegmentName)
	if err != nil {
		return err
	}
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1] <= oldest+1 {
			if err := os.Remove(filepath.Join(dir, segmentName(segs[i]))); err != nil && !errors.Is(err, os.ErrNotExist) {
				return err
			}
		}
	}

	if modelKeep != nil {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return err
		}
		for _, e := range entries {
			v, ok := parseModelName(e.Name())
			if ok && !modelKeep(v) {
				if err := os.Remove(filepath.Join(dir, e.Name())); err != nil && !errors.Is(err, os.ErrNotExist) {
					return err
				}
			}
		}
	}
	return nil
}

// ModelCheckpointName is the data-dir file name for the version-N W-D
// checkpoint the serving layer persists on every model swap.
func ModelCheckpointName(version int) string { return fmt.Sprintf("model-v%d.ckpt", version) }

// parseModelName extracts the version from a checkpoint file name.
func parseModelName(name string) (int, bool) {
	rest, ok := strings.CutPrefix(name, "model-v")
	if !ok {
		return 0, false
	}
	rest, ok = strings.CutSuffix(rest, ".ckpt")
	if !ok {
		return 0, false
	}
	v, err := strconv.Atoi(rest)
	return v, err == nil
}

// syncDir fsyncs a directory so renames and removals in it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	if cerr := d.Close(); serr == nil {
		serr = cerr
	}
	return serr
}
