package durable

import (
	"fmt"
	"os"
	"strconv"
	"strings"
)

// CrashpointEnv is the environment variable the fault-injection harness
// sets to kill the process from inside the WAL writer: "LSN" crashes
// right after the record with that LSN is fully on disk (a crash at a
// record boundary), and "LSN:SPLIT" writes only the first SPLIT bytes of
// that record's frame before dying (a torn write). The exit mimics a
// kill -9: prior buffered bytes are flushed to the OS first, so the
// simulated machine state is exactly "everything acknowledged before the
// crashpoint is in the page cache".
const CrashpointEnv = "AUTOVIEW_WAL_CRASHPOINT"

// crashExitCode is what a SIGKILLed process reports (128+9); the harness
// asserts it to distinguish an injected crash from a real failure.
const crashExitCode = 137

// crashpoint is the parsed CrashpointEnv instruction.
type crashpoint struct {
	lsn   uint64
	split int // bytes of the frame to write before dying; <0 = whole record
}

// crashpointFromEnv parses CrashpointEnv. It returns nil when unset and
// panics on a malformed value: a typo in the harness must fail loudly,
// not silently run without fault injection.
func crashpointFromEnv() *crashpoint {
	v := os.Getenv(CrashpointEnv)
	if v == "" {
		return nil
	}
	lsnPart, splitPart, hasSplit := strings.Cut(v, ":")
	lsn, err := strconv.ParseUint(lsnPart, 10, 64)
	if err != nil || lsn == 0 {
		panic(fmt.Sprintf("durable: malformed %s=%q", CrashpointEnv, v))
	}
	cp := &crashpoint{lsn: lsn, split: -1}
	if hasSplit {
		split, err := strconv.Atoi(splitPart)
		if err != nil || split < 0 {
			panic(fmt.Sprintf("durable: malformed %s=%q", CrashpointEnv, v))
		}
		cp.split = split
	}
	return cp
}

// fire writes the (possibly truncated) frame straight to f — the
// caller has already flushed everything before it — syncs so the bytes
// reach the simulated "surviving" state, and dies.
func (cp *crashpoint) fire(f *os.File, frame []byte) {
	cut := len(frame)
	if cp.split >= 0 && cp.split < cut {
		cut = cp.split
	}
	if _, err := f.Write(frame[:cut]); err != nil {
		panic(fmt.Sprintf("durable: crashpoint write: %v", err))
	}
	if err := f.Sync(); err != nil {
		panic(fmt.Sprintf("durable: crashpoint sync: %v", err))
	}
	os.Exit(crashExitCode)
}
