package durable

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"autoview/internal/obs"
)

// segmentName returns the file name of the segment whose first record
// has the given LSN.
func segmentName(firstLSN uint64) string { return fmt.Sprintf("wal-%016x.log", firstLSN) }

// walOp is one unit of work for the writer goroutine: a record append, a
// flush/sync barrier, or a segment rotation marker.
type walOp struct {
	lsn     uint64
	t       RecordType
	payload []byte
	syncCh  chan error // barrier: flush (+fsync per policy), report
	rotate  bool       // close the current segment; next record opens a new one
}

// wal is the append side of the log: LSNs are assigned under mu (the
// send into the bounded queue happens under the same lock, so queue
// order is LSN order) and a single writer goroutine owns the file.
type wal struct {
	opts Options
	cp   *crashpoint

	mu      sync.Mutex
	closed  bool
	nextLSN uint64

	queue chan walOp
	done  chan struct{}

	// Writer-goroutine state (unsynchronized: single owner).
	f     *os.File
	bw    *bufio.Writer
	dirty bool   // flushed to the OS but not yet fsynced
	frame []byte // encode scratch
	err   error  // sticky write error
}

// openWAL starts the writer. nextLSN is the first LSN to assign;
// resumePath (when non-empty) is the newest existing segment, already
// truncated past its last intact record, to continue appending to.
func openWAL(opts Options, nextLSN uint64, resumePath string) (*wal, error) {
	w := &wal{
		opts:    opts,
		cp:      crashpointFromEnv(),
		nextLSN: nextLSN,
		queue:   make(chan walOp, opts.QueueDepth),
		done:    make(chan struct{}),
	}
	if resumePath != "" {
		f, err := os.OpenFile(resumePath, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("durable: resume segment: %w", err)
		}
		w.f = f
		w.bw = bufio.NewWriter(f)
	}
	go w.run()
	return w, nil
}

// append assigns the next LSN and enqueues the record. A full queue
// blocks (backpressure) rather than dropping; the writer always drains,
// so the wait is bounded by disk throughput. Returns the assigned LSN.
func (w *wal) append(t RecordType, payload []byte) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, fmt.Errorf("durable: append after close")
	}
	lsn := w.nextLSN
	w.nextLSN++
	w.queue <- walOp{lsn: lsn, t: t, payload: payload}
	obsQueue.Set(float64(len(w.queue)))
	return lsn, nil
}

// lastLSN returns the most recently assigned LSN (0 before any append).
func (w *wal) lastLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextLSN - 1
}

// sync blocks until every record enqueued before it is written and —
// unless the policy is FsyncOff — fsynced. It reports the writer's
// sticky error, so callers learn about append failures here.
func (w *wal) sync() error {
	ch := make(chan error, 1)
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return fmt.Errorf("durable: sync after close")
	}
	w.queue <- walOp{syncCh: ch}
	w.mu.Unlock()
	return <-ch
}

// rotate marks a segment boundary: the writer closes the current file
// after draining everything enqueued before the marker, and the next
// record lazily opens a fresh segment named by its LSN.
func (w *wal) rotate() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return
	}
	w.queue <- walOp{rotate: true}
}

// close drains the queue, flushes, fsyncs (unless FsyncOff), closes the
// file, and stops the writer. Idempotent; returns the sticky error.
func (w *wal) close() error {
	w.mu.Lock()
	if !w.closed {
		w.closed = true
		close(w.queue)
	}
	w.mu.Unlock()
	<-w.done
	return w.err
}

// run is the writer goroutine.
func (w *wal) run() {
	defer close(w.done)
	var tick <-chan time.Time
	if w.opts.Fsync == FsyncInterval {
		t := time.NewTicker(w.opts.FsyncEvery)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case op, ok := <-w.queue:
			if !ok {
				w.flush(w.opts.Fsync != FsyncOff)
				w.closeFile()
				return
			}
			w.handle(op)
			if len(w.queue) == 0 {
				// Queue drained: push buffered bytes to the OS so an
				// abrupt process death loses at most in-queue records.
				w.flush(false)
			}
			obsQueue.Set(float64(len(w.queue)))
		case <-tick:
			if w.dirty || w.buffered() {
				w.flush(true)
			}
		}
	}
}

func (w *wal) buffered() bool { return w.bw != nil && w.bw.Buffered() > 0 }

// handle applies one op in the writer goroutine.
func (w *wal) handle(op walOp) {
	switch {
	case op.syncCh != nil:
		w.flush(w.opts.Fsync != FsyncOff)
		op.syncCh <- w.err
	case op.rotate:
		w.flush(w.opts.Fsync != FsyncOff)
		w.closeFile()
	default:
		w.write(op)
	}
}

// write frames and appends one record.
func (w *wal) write(op walOp) {
	if w.err != nil {
		return // sticky: later syncs surface it
	}
	if w.f == nil {
		name := filepath.Join(w.opts.Dir, segmentName(op.lsn))
		f, err := os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err != nil {
			w.fail(fmt.Errorf("durable: open segment: %w", err))
			return
		}
		w.f = f
		w.bw = bufio.NewWriter(f)
		if _, err := w.bw.Write(appendHeader(nil)); err != nil {
			w.fail(err)
			return
		}
		obsSegments.Inc()
	}
	w.frame = appendFrame(w.frame[:0], op.t, op.payload)
	if w.cp != nil && op.lsn == w.cp.lsn {
		// Fault injection: everything before this record must reach the
		// file first, then the (possibly torn) frame goes down raw and
		// the process dies as if SIGKILLed.
		if err := w.bw.Flush(); err != nil {
			w.fail(err)
			return
		}
		w.cp.fire(w.f, w.frame)
	}
	if _, err := w.bw.Write(w.frame); err != nil {
		w.fail(err)
		return
	}
	obsAppends.Inc()
	obsBytes.Add(int64(len(w.frame)))
	w.dirty = true
	if w.opts.Fsync == FsyncAlways {
		w.flush(true)
	}
}

// flush pushes buffered bytes to the OS and optionally fsyncs.
func (w *wal) flush(fsync bool) {
	if w.f == nil || w.err != nil {
		return
	}
	if err := w.bw.Flush(); err != nil {
		w.fail(err)
		return
	}
	if fsync && w.dirty {
		if err := w.f.Sync(); err != nil {
			w.fail(err)
			return
		}
		obsFsyncs.Inc()
		w.dirty = false
	}
}

// closeFile closes the current segment (next record opens a fresh one).
func (w *wal) closeFile() {
	if w.f == nil {
		return
	}
	if err := w.f.Close(); err != nil && w.err == nil {
		w.fail(err)
	}
	w.f, w.bw, w.dirty = nil, nil, false
}

// fail records the first writer error; every record after it is dropped
// (the log would have a gap otherwise) and sync/close surface the error.
func (w *wal) fail(err error) {
	if w.err == nil {
		w.err = err
		obs.Error("durable.wal", "err", err)
	}
}
