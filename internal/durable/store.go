package durable

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"autoview/internal/obs"
)

// State is the advisor state durability reconstructs: the rolling
// window (as ingested SQL, oldest-first, plus the lifetime total), the
// versioned view set (opaque JSON), and the active model pointer. LSN is
// the last record folded in.
type State struct {
	WindowSQL    []string
	WindowTotal  uint64
	ViewSet      json.RawMessage
	ModelPath    string
	ModelScale   float64
	ModelVersion int
	LSN          uint64
}

// apply folds one WAL record into the state. windowCap > 0 clips the
// window to its newest windowCap entries, mirroring ring eviction.
func (st *State) apply(t RecordType, payload []byte, windowCap int) error {
	switch t {
	case RecordIngest:
		var p ingestPayload
		if err := json.Unmarshal(payload, &p); err != nil {
			return fmt.Errorf("durable: ingest record: %w", err)
		}
		st.WindowSQL = append(st.WindowSQL, p.SQLs...)
		st.WindowTotal += uint64(len(p.SQLs))
		if windowCap > 0 && len(st.WindowSQL) > 2*windowCap {
			// Compact lazily: keeping up to 2x capacity bounds both the
			// copy frequency and the slack memory during long replays.
			st.WindowSQL = append([]string(nil), st.WindowSQL[len(st.WindowSQL)-windowCap:]...)
		}
	case RecordModel:
		var m ModelRecord
		if err := json.Unmarshal(payload, &m); err != nil {
			return fmt.Errorf("durable: model record: %w", err)
		}
		st.ModelPath, st.ModelScale, st.ModelVersion = m.Path, m.Scale, m.Version
	case RecordViewSet:
		st.ViewSet = append(json.RawMessage(nil), payload...)
	default:
		return fmt.Errorf("durable: unknown record type %d", t)
	}
	return nil
}

// clip trims the window to its final capacity after replay.
func (st *State) clip(windowCap int) {
	if windowCap > 0 && len(st.WindowSQL) > windowCap {
		st.WindowSQL = append([]string(nil), st.WindowSQL[len(st.WindowSQL)-windowCap:]...)
	}
}

// recoveryInfo is what Open needs beyond the state: where appends
// resume.
type recoveryInfo struct {
	lastLSN    uint64 // highest durable LSN (0 when none)
	snapLSN    uint64 // LSN of the snapshot recovery started from
	resumePath string // newest segment to keep appending to ("" = none)
	fresh      bool   // no snapshot and no records: a brand-new dir
}

// Recover reconstructs the state a data directory holds: the newest
// intact snapshot plus a replay of every WAL record after it, with the
// torn tail of the newest segment truncated (physically — the file is
// cut at the last intact record so appends can resume). A gap between
// segments or inside a non-final segment fails with ErrGap: that shape
// cannot come from a crash, only from lost or corrupted files.
func Recover(dir string, windowCap int) (*State, *recoveryInfo, error) {
	defer obs.StartSpan("durable.recover")()
	st := &State{}
	info := &recoveryInfo{}
	if snap := latestSnapshot(dir); snap != nil {
		st.WindowSQL = append(st.WindowSQL, snap.WindowSQL...)
		st.WindowTotal = snap.WindowTotal
		st.ViewSet = append(json.RawMessage(nil), snap.ViewSet...)
		st.ModelPath, st.ModelScale, st.ModelVersion = snap.ModelPath, snap.ModelScale, snap.ModelVersion
		st.LSN = snap.LSN
		info.snapLSN = snap.LSN
		info.lastLSN = snap.LSN
	}

	segs, err := listByLSN(dir, parseSegmentName)
	if err != nil {
		return nil, nil, err
	}
	replayed := int64(0)
	var next uint64 // expected first LSN of the following segment
	for i, first := range segs {
		// Continuity: each segment must pick up exactly where the
		// previous one ended — except that a forward jump is legal when
		// the snapshot covers every skipped LSN (a tail truncated after
		// the snapshot was taken). The oldest segment may start anywhere
		// at or below the snapshot boundary; earlier history is pruned.
		if i == 0 {
			if first > info.snapLSN+1 {
				return nil, nil, fmt.Errorf("%w: oldest segment starts at %d, snapshot covers %d", ErrGap, first, info.snapLSN)
			}
		} else if first != next && !(first > next && first <= info.snapLSN+1) {
			return nil, nil, fmt.Errorf("%w: segment starts at %d, want %d (snapshot covers %d)",
				ErrGap, first, next, info.snapLSN)
		}
		path := filepath.Join(dir, segmentName(first))
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		lsn := first - 1
		consumed, clean, err := scanSegment(data, func(t RecordType, payload []byte) error {
			lsn++
			if lsn <= info.snapLSN {
				return nil // already folded into the snapshot
			}
			replayed++
			return st.apply(t, payload, windowCap)
		})
		if err != nil {
			return nil, nil, err
		}
		if !clean && i == len(segs)-1 {
			// Torn tail of the newest segment: the expected shape of a
			// crash mid-append. Cut the file at the last intact record so
			// appends can resume. A torn tail in an older segment is only
			// legal when the next segment's continuity check above proves
			// the snapshot covers the loss; otherwise it fails as a gap.
			torn := int64(len(data) - consumed)
			if err := os.Truncate(path, int64(consumed)); err != nil {
				return nil, nil, fmt.Errorf("durable: truncate torn tail: %w", err)
			}
			obsTruncated.Add(torn)
			obs.Warn("durable.recover", "event", "torn_tail_truncated", "segment", segmentName(first), "bytes", torn)
		}
		next = lsn + 1
		if i == len(segs)-1 {
			info.resumePath = path
		}
	}
	if next > 0 && next-1 > info.lastLSN {
		info.lastLSN = next - 1
	}
	if next > 0 && next-1 < info.snapLSN {
		// The WAL ends before the snapshot's coverage: legal (those
		// records' effects are in the snapshot), but appends must not
		// reuse LSNs the snapshot already claims.
		info.resumePath = "" // rotate: the stale segment stays as history
	}
	st.LSN = info.lastLSN
	st.clip(windowCap)
	info.fresh = info.snapLSN == 0 && len(segs) == 0
	obsReplayed.Add(replayed)
	obs.Info("durable.recover", "snapshot_lsn", info.snapLSN, "replayed", replayed,
		"last_lsn", info.lastLSN, "window", len(st.WindowSQL), "fresh", info.fresh)
	return st, info, nil
}

// Store is the serving layer's handle on durability: an open WAL for
// appends plus the state recovered at Open time.
type Store struct {
	opts      Options
	w         *wal
	recovered *State

	mu          sync.Mutex // serializes snapshots and lastSnapLSN
	lastSnapLSN uint64
}

// Open recovers dir (creating it if missing) and opens the WAL for
// appending. Recovered returns the reconstructed state, or nil when the
// directory held none.
func Open(opts Options) (*Store, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	st, info, err := Recover(opts.Dir, opts.WindowCap)
	if err != nil {
		return nil, err
	}
	w, err := openWAL(opts, info.lastLSN+1, info.resumePath)
	if err != nil {
		return nil, err
	}
	s := &Store{opts: opts, w: w, lastSnapLSN: info.snapLSN}
	if !info.fresh {
		s.recovered = st
	}
	return s, nil
}

// Recovered returns the state reconstructed at Open, or nil for a fresh
// directory.
func (s *Store) Recovered() *State { return s.recovered }

// Dir returns the data directory.
func (s *Store) Dir() string { return s.opts.Dir }

// LastLSN returns the most recently assigned LSN.
func (s *Store) LastLSN() uint64 { return s.w.lastLSN() }

// AppendIngest logs a batch of ingested query SQL.
func (s *Store) AppendIngest(sqls []string) error {
	payload, err := json.Marshal(ingestPayload{SQLs: sqls})
	if err != nil {
		return err
	}
	_, err = s.w.append(RecordIngest, payload)
	return err
}

// AppendModel logs a model swap.
func (s *Store) AppendModel(rec ModelRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	_, err = s.w.append(RecordModel, payload)
	return err
}

// AppendViewSet logs a view-set rotation (raw is the serving layer's
// ViewSet JSON).
func (s *Store) AppendViewSet(raw json.RawMessage) error {
	_, err := s.w.append(RecordViewSet, raw)
	return err
}

// Sync blocks until every record appended before it is flushed (and
// fsynced, unless the policy is FsyncOff), surfacing any writer error.
func (s *Store) Sync() error { return s.w.sync() }

// ShouldSnapshot reports that SnapshotEvery records have accumulated
// since the last snapshot.
func (s *Store) ShouldSnapshot() bool {
	if s.opts.SnapshotEvery <= 0 {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.lastLSN() >= s.lastSnapLSN+uint64(s.opts.SnapshotEvery)
}

// WriteSnapshot persists a snapshot. snap.LSN must be the store's
// LastLSN captured atomically with the state (the caller holds whatever
// lock orders its appends). The WAL is flushed first so the snapshot
// never claims coverage of records that could still be lost, the log
// rotates so a fresh segment starts after the snapshot point, and older
// generations (plus segments and checkpoints wholly below the oldest
// retained snapshot) are pruned.
func (s *Store) WriteSnapshot(snap *Snapshot) error {
	defer obs.StartSpan("durable.snapshot")()
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.sync(); err != nil {
		return err
	}
	if err := writeSnapshot(s.opts.Dir, snap); err != nil {
		return err
	}
	s.lastSnapLSN = snap.LSN
	s.w.rotate()
	minVersion := s.minRetainedModelVersion()
	if err := pruneSnapshots(s.opts.Dir, s.opts.Retain, func(v int) bool { return v >= minVersion }); err != nil {
		obs.Warn("durable.snapshot", "event", "prune_failed", "err", err)
	}
	return nil
}

// minRetainedModelVersion is the smallest checkpoint version any
// retained snapshot references; older checkpoints are unreachable.
// Unversioned (0) references keep everything, erring on the safe side.
func (s *Store) minRetainedModelVersion() int {
	lsns, err := listByLSN(s.opts.Dir, parseSnapshotName)
	if err != nil {
		return 0
	}
	if len(lsns) > s.opts.Retain {
		lsns = lsns[len(lsns)-s.opts.Retain:]
	}
	min := 0
	for _, lsn := range lsns {
		snap, err := loadSnapshot(filepath.Join(s.opts.Dir, snapshotName(lsn)))
		if err != nil {
			return 0
		}
		if snap.ModelVersion == 0 {
			return 0
		}
		if min == 0 || snap.ModelVersion < min {
			min = snap.ModelVersion
		}
	}
	return min
}

// Close flushes, fsyncs (per policy), and stops the WAL writer.
func (s *Store) Close() error { return s.w.close() }
