// Package durable is the advisor's persistence spine: an append-only
// write-ahead log plus point-in-time snapshots, so a restarted
// viewserverd rejoins with a warm rolling window, the current versioned
// view set, and a pointer to the last published W-D checkpoint instead
// of relearning the workload from an empty ring buffer.
//
// Layout of a data directory:
//
//	wal-<first-lsn>.log   append-only segments of CRC32C-framed records
//	snap-<lsn>.json       point-in-time snapshots (atomic tmp+rename)
//	model-v<N>.ckpt       W-D checkpoints referenced by records/snapshots
//
// Every record carries a CRC32C over its type+payload and is
// length-prefixed; each segment opens with a versioned header. Replay
// verifies both and truncates a torn tail (a crash mid-append) instead
// of failing, while a gap *between* segments — which can only mean real
// corruption, not a crash — fails recovery loudly. Records are assigned
// monotonically increasing LSNs; snapshots record the LSN their state
// covers, replay resumes right after it, and segments wholly below the
// oldest retained snapshot are pruned.
//
// Appends go through a bounded queue drained by a single writer
// goroutine, so callers on a serving path pay one channel send. The
// fsync policy is configurable: per-record for strict durability,
// interval-batched (the default) to amortize, or off to leave flushing
// to the OS (process-crash safe — the page cache survives a kill -9 —
// but not power-loss safe). See SERVING.md "Durability".
package durable

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"autoview/internal/obs"
)

// Durability metrics (see OBSERVABILITY.md).
var (
	obsAppends   = obs.Default.Counter("durable.wal.appends", "records appended to the write-ahead log")
	obsBytes     = obs.Default.Counter("durable.wal.bytes", "bytes written to the write-ahead log")
	obsFsyncs    = obs.Default.Counter("durable.wal.fsyncs", "fsync calls issued by the WAL writer")
	obsQueue     = obs.Default.Gauge("durable.wal.queue", "records waiting in the bounded WAL append queue")
	obsSegments  = obs.Default.Counter("durable.wal.segments", "WAL segments opened (rotations + initial)")
	obsTruncated = obs.Default.Counter("durable.wal.truncated_bytes", "torn-tail bytes truncated from the WAL on recovery")
	obsReplayed  = obs.Default.Counter("durable.wal.replayed", "records replayed from the WAL during recovery")
	obsSnapshots = obs.Default.Counter("durable.snapshot.writes", "snapshots written")
	obsSnapBytes = obs.Default.Gauge("durable.snapshot.bytes", "size of the most recent snapshot")
	obsSnapLSN   = obs.Default.Gauge("durable.snapshot.lsn", "LSN covered by the most recent snapshot")
)

// FsyncPolicy selects when the WAL writer calls fsync.
type FsyncPolicy int

const (
	// FsyncInterval batches fsyncs on a timer (Options.FsyncEvery): at
	// most one flush window of acknowledged records is exposed to a
	// power loss. The default.
	FsyncInterval FsyncPolicy = iota
	// FsyncAlways fsyncs after every record.
	FsyncAlways
	// FsyncOff never fsyncs: records are flushed to the OS after each
	// queue drain, so state survives a process kill but not power loss.
	FsyncOff
)

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncOff:
		return "off"
	default:
		return "interval"
	}
}

// ParseFsync maps the -fsync flag values onto a policy.
func ParseFsync(s string) (FsyncPolicy, error) {
	switch strings.ToLower(s) {
	case "", "interval":
		return FsyncInterval, nil
	case "always", "record", "per-record":
		return FsyncAlways, nil
	case "off", "none":
		return FsyncOff, nil
	default:
		return 0, fmt.Errorf("durable: unknown fsync policy %q (want always, interval, or off)", s)
	}
}

// Options tunes a Store. Dir is required; everything else has defaults.
type Options struct {
	// Dir is the data directory (created if missing).
	Dir string
	// Fsync selects the WAL sync policy.
	Fsync FsyncPolicy
	// FsyncEvery is the FsyncInterval batching period. Default 50ms.
	FsyncEvery time.Duration
	// QueueDepth bounds the WAL append queue; a full queue applies
	// backpressure to the appender (never drops). Default 1024.
	QueueDepth int
	// SnapshotEvery is the record count between automatic snapshots
	// (ShouldSnapshot turns true past it). 0 selects the default 1024;
	// negative disables automatic snapshots (explicit calls still work).
	SnapshotEvery int
	// Retain is how many snapshot generations to keep (older snapshots
	// and the segments wholly below the oldest retained one are pruned).
	// Default 2, minimum 1.
	Retain int
	// WindowCap clips the recovered window to the newest WindowCap
	// queries during replay (0 means unbounded).
	WindowCap int
}

func (o Options) withDefaults() (Options, error) {
	if o.Dir == "" {
		return o, errors.New("durable: Options.Dir is required")
	}
	if o.FsyncEvery <= 0 {
		o.FsyncEvery = 50 * time.Millisecond
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 1024
	}
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = 1024
	}
	if o.Retain < 1 {
		o.Retain = 2
	}
	return o, nil
}
