package durable

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"testing"
)

// The crash harness re-execs the test binary as a child running a fixed
// script of WAL appends with AUTOVIEW_WAL_CRASHPOINT set, so the writer
// goroutine kills the process at an exact record boundary (or mid-record
// for torn writes). The parent then recovers the directory and asserts
// the reconstructed state equals the in-memory reference state after the
// surviving record prefix — for every crashpoint.

const (
	crashHelperEnv = "AUTOVIEW_TEST_CRASH_HELPER"
	crashDirEnv    = "AUTOVIEW_TEST_CRASH_DIR"
)

// crashOp is one scripted append. Exactly one field group is set,
// selected by t.
type crashOp struct {
	t       RecordType
	sqls    []string
	model   ModelRecord
	viewset string
}

// crashScript is the scripted session: ingest and rotation records
// around a mid-script snapshot (taken after record 5), mirroring the
// serving layer's bootstrap -> ingest -> advise -> ingest life cycle.
func crashScript() []crashOp {
	return []crashOp{
		{t: RecordIngest, sqls: []string{"SELECT a FROM t1", "SELECT b FROM t1"}},
		{t: RecordIngest, sqls: []string{"SELECT c FROM t2"}},
		{t: RecordModel, model: ModelRecord{Path: "model-v1.ckpt", Scale: 1.5, Version: 1}},
		{t: RecordViewSet, viewset: `{"version":1,"views":["view_t1"]}`},
		{t: RecordIngest, sqls: []string{"SELECT d FROM t3", "SELECT e FROM t3", "SELECT f FROM t3"}},
		{t: RecordIngest, sqls: []string{"SELECT g FROM t4"}},
		{t: RecordModel, model: ModelRecord{Path: "model-v2.ckpt", Scale: 1.75, Version: 2}},
		{t: RecordViewSet, viewset: `{"version":2,"views":["view_t3"]}`},
		{t: RecordIngest, sqls: []string{"SELECT h FROM t5"}},
	}
}

// crashSnapshotAfter is the record count the scripted session snapshots
// behind (rotating the WAL), so crashpoints past it exercise
// snapshot-plus-tail recovery while earlier ones replay the log alone.
const crashSnapshotAfter = 5

// crashStateAfter folds the first k scripted records into a reference
// state, independently of the replay code under test.
func crashStateAfter(k int) *State {
	st := &State{LSN: uint64(k)}
	for _, op := range crashScript()[:k] {
		switch op.t {
		case RecordIngest:
			st.WindowSQL = append(st.WindowSQL, op.sqls...)
			st.WindowTotal += uint64(len(op.sqls))
		case RecordModel:
			st.ModelPath, st.ModelScale, st.ModelVersion = op.model.Path, op.model.Scale, op.model.Version
		case RecordViewSet:
			st.ViewSet = json.RawMessage(op.viewset)
		}
	}
	return st
}

// runCrashScript executes the scripted session against dir. Under a
// crashpoint the process dies inside a WAL append and never returns.
func runCrashScript(dir string) error {
	s, err := Open(Options{Dir: dir, Fsync: FsyncInterval, SnapshotEvery: -1})
	if err != nil {
		return err
	}
	for i, op := range crashScript() {
		switch op.t {
		case RecordIngest:
			err = s.AppendIngest(op.sqls)
		case RecordModel:
			err = s.AppendModel(op.model)
		case RecordViewSet:
			err = s.AppendViewSet(json.RawMessage(op.viewset))
		}
		if err != nil {
			return fmt.Errorf("append %d: %w", i+1, err)
		}
		if i+1 == crashSnapshotAfter {
			ref := crashStateAfter(crashSnapshotAfter)
			snap := &Snapshot{
				LSN:       uint64(crashSnapshotAfter),
				WindowSQL: ref.WindowSQL, WindowTotal: ref.WindowTotal,
				ViewSet:   ref.ViewSet,
				ModelPath: ref.ModelPath, ModelScale: ref.ModelScale, ModelVersion: ref.ModelVersion,
			}
			if err := s.WriteSnapshot(snap); err != nil {
				return fmt.Errorf("snapshot: %w", err)
			}
		}
	}
	return s.Close()
}

// TestCrashScriptHelper is the child-process entry point; it only runs
// when re-execed by the harness with the helper env set.
func TestCrashScriptHelper(t *testing.T) {
	if os.Getenv(crashHelperEnv) != "1" {
		t.Skip("harness child entry point; run via TestCrashRecoverySweep")
	}
	if err := runCrashScript(os.Getenv(crashDirEnv)); err != nil {
		t.Fatal(err)
	}
}

// runCrashChild re-execs the test binary running the scripted session
// against dir. crashpoint "" expects a clean exit; otherwise the child
// must die with the injected-kill exit code.
func runCrashChild(t *testing.T, dir, crashpoint string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestCrashScriptHelper$", "-test.count=1")
	cmd.Env = append(os.Environ(), crashHelperEnv+"=1", crashDirEnv+"="+dir, CrashpointEnv+"="+crashpoint)
	out, err := cmd.CombinedOutput()
	if crashpoint == "" {
		if err != nil {
			t.Fatalf("clean child failed: %v\n%s", err, out)
		}
		return
	}
	var exit *exec.ExitError
	if !errors.As(err, &exit) || exit.ExitCode() != crashExitCode {
		t.Fatalf("crashpoint %s: child exit = %v, want code %d\n%s", crashpoint, err, crashExitCode, out)
	}
}

// compareState asserts got matches the reference state after k records.
func compareState(t *testing.T, label string, got *State, k int) {
	t.Helper()
	want := crashStateAfter(k)
	if got == nil {
		t.Fatalf("%s: nil state, want prefix %d", label, k)
	}
	if got.LSN != want.LSN {
		t.Fatalf("%s: LSN = %d, want %d", label, got.LSN, want.LSN)
	}
	if len(got.WindowSQL) != len(want.WindowSQL) {
		t.Fatalf("%s: window %v, want %v", label, got.WindowSQL, want.WindowSQL)
	}
	for i := range want.WindowSQL {
		if got.WindowSQL[i] != want.WindowSQL[i] {
			t.Fatalf("%s: window[%d] = %q, want %q", label, i, got.WindowSQL[i], want.WindowSQL[i])
		}
	}
	if got.WindowTotal != want.WindowTotal {
		t.Fatalf("%s: total = %d, want %d", label, got.WindowTotal, want.WindowTotal)
	}
	if string(got.ViewSet) != string(want.ViewSet) {
		t.Fatalf("%s: viewset = %s, want %s", label, got.ViewSet, want.ViewSet)
	}
	if got.ModelPath != want.ModelPath || got.ModelVersion != want.ModelVersion ||
		got.ModelScale != want.ModelScale { //lint:allow floateq the scale must survive the JSON round trip bit-exactly
		t.Fatalf("%s: model = %q v%d scale %v, want %q v%d scale %v", label,
			got.ModelPath, got.ModelVersion, got.ModelScale, want.ModelPath, want.ModelVersion, want.ModelScale)
	}
}

// TestCrashScriptCleanReference proves the never-crashed session
// recovers to the full-script reference state — the baseline every
// crashpoint case diffs against.
func TestCrashScriptCleanReference(t *testing.T) {
	dir := t.TempDir()
	runCrashChild(t, dir, "")
	st, _, err := Recover(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	compareState(t, "clean", st, len(crashScript()))
}

// TestCrashRecoverySweep kills a child at every record boundary and at
// several mid-record torn-write offsets, then asserts recovery
// reconstructs exactly the surviving record prefix and that appends
// resume cleanly afterwards.
func TestCrashRecoverySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns one child process per crashpoint")
	}
	// split -1 crashes after the record is fully durable (prefix includes
	// it); the others tear the frame inside the length prefix (1), at the
	// CRC boundary (4), just past the type byte (9), and mid-payload (12)
	// — every scripted frame is longer than 12 bytes, so each offset is a
	// genuine torn write losing the record.
	splits := []int{-1, 0, 1, 4, 9, 12}
	total := len(crashScript())
	for lsn := 1; lsn <= total; lsn++ {
		for _, split := range splits {
			spec := fmt.Sprintf("%d", lsn)
			surviving := lsn
			if split >= 0 {
				spec = fmt.Sprintf("%d:%d", lsn, split)
				surviving = lsn - 1
			}
			t.Run(spec, func(t *testing.T) {
				dir := t.TempDir()
				runCrashChild(t, dir, spec)
				st, _, err := Recover(dir, 0)
				if err != nil {
					t.Fatalf("recover: %v", err)
				}
				compareState(t, "recovered", st, surviving)

				// The directory must accept appends again: reopen, log one
				// more ingest, and recover once more.
				s, err := Open(Options{Dir: dir, Fsync: FsyncAlways, SnapshotEvery: -1})
				if err != nil {
					t.Fatalf("reopen: %v", err)
				}
				if err := s.AppendIngest([]string{"SELECT post FROM crash"}); err != nil {
					t.Fatal(err)
				}
				if err := s.Close(); err != nil {
					t.Fatal(err)
				}
				st2, _, err := Recover(dir, 0)
				if err != nil {
					t.Fatalf("re-recover: %v", err)
				}
				if st2.LSN != uint64(surviving)+1 {
					t.Fatalf("post-append LSN = %d, want %d", st2.LSN, surviving+1)
				}
				if got := st2.WindowSQL[len(st2.WindowSQL)-1]; got != "SELECT post FROM crash" {
					t.Fatalf("post-append window tail = %q", got)
				}
			})
		}
	}
}
