package durable

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// testOpts returns fast-sync options over a fresh temp dir.
func testOpts(t *testing.T) Options {
	t.Helper()
	return Options{Dir: t.TempDir(), Fsync: FsyncAlways, SnapshotEvery: -1}
}

// mustOpen opens a store and fails the test on error.
func mustOpen(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

// ingestN appends n single-query ingest records "q<base>".."q<base+n-1>".
func ingestN(t *testing.T, s *Store, base, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := s.AppendIngest([]string{fmt.Sprintf("q%d", base+i)}); err != nil {
			t.Fatalf("AppendIngest: %v", err)
		}
	}
}

// wantWindow asserts the recovered window is exactly q<from>..q<to>.
func wantWindow(t *testing.T, st *State, from, to int) {
	t.Helper()
	if st == nil {
		t.Fatalf("nil state, want window q%d..q%d", from, to)
	}
	n := to - from + 1
	if len(st.WindowSQL) != n {
		t.Fatalf("window %v, want %d entries q%d..q%d", st.WindowSQL, n, from, to)
	}
	for i := 0; i < n; i++ {
		if want := fmt.Sprintf("q%d", from+i); st.WindowSQL[i] != want {
			t.Fatalf("window[%d] = %q, want %q (full: %v)", i, st.WindowSQL[i], want, st.WindowSQL)
		}
	}
}

func TestWALRoundTrip(t *testing.T) {
	opts := testOpts(t)
	s := mustOpen(t, opts)
	if s.Recovered() != nil {
		t.Fatal("fresh dir reported recovered state")
	}
	ingestN(t, s, 0, 3)
	if err := s.AppendModel(ModelRecord{Path: "model-v1.ckpt", Scale: 2.5, Version: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendViewSet(json.RawMessage(`{"version":7}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := mustOpen(t, opts)
	defer func() { _ = s2.Close() }() // read-only reopen; close error checked on the write path
	st := s2.Recovered()
	wantWindow(t, st, 0, 2)
	if st.WindowTotal != 3 {
		t.Fatalf("total = %d", st.WindowTotal)
	}
	if st.ModelPath != "model-v1.ckpt" || st.ModelScale != 2.5 || st.ModelVersion != 1 { //lint:allow floateq scale must round-trip bit-exactly
		t.Fatalf("model = %+v", st)
	}
	if string(st.ViewSet) != `{"version":7}` {
		t.Fatalf("viewset = %s", st.ViewSet)
	}
	if st.LSN != 5 {
		t.Fatalf("LSN = %d, want 5", st.LSN)
	}
}

func TestWALResumeAfterReopen(t *testing.T) {
	opts := testOpts(t)
	s := mustOpen(t, opts)
	ingestN(t, s, 0, 2)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen and keep appending into the same segment.
	s = mustOpen(t, opts)
	ingestN(t, s, 2, 2)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	st, info, err := Recover(opts.Dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantWindow(t, st, 0, 3)
	if info.lastLSN != 4 {
		t.Fatalf("lastLSN = %d", info.lastLSN)
	}
	// All four records share one segment: nothing rotated.
	segs, err := listByLSN(opts.Dir, parseSegmentName)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments = %v (err %v), want exactly one", segs, err)
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	for _, cut := range []int{1, 4, 8, 9, 12} {
		opts := testOpts(t)
		s := mustOpen(t, opts)
		ingestN(t, s, 0, 3)
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(opts.Dir, segmentName(1))
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// Find the offset of record 3 by scanning two records.
		off := headerSize
		for i := 0; i < 2; i++ {
			_, _, n, err := decodeFrame(data[off:])
			if err != nil {
				t.Fatal(err)
			}
			off += n
		}
		if err := os.WriteFile(path, data[:off+cut], 0o644); err != nil {
			t.Fatal(err)
		}

		st, _, err := Recover(opts.Dir, 0)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		wantWindow(t, st, 0, 1)
		if st.LSN != 2 {
			t.Fatalf("cut %d: LSN = %d", cut, st.LSN)
		}
		// Recovery physically truncated: the file now ends at the last
		// intact record, and appending resumes cleanly.
		if fi, err := os.Stat(path); err != nil || fi.Size() != int64(off) {
			t.Fatalf("cut %d: size %d, want %d (err %v)", cut, fi.Size(), off, err)
		}
		s = mustOpen(t, opts)
		ingestN(t, s, 2, 1)
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		st, _, err = Recover(opts.Dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		wantWindow(t, st, 0, 2)
	}
}

func TestWALCorruptMiddleRecordTruncatesThere(t *testing.T) {
	opts := testOpts(t)
	s := mustOpen(t, opts)
	ingestN(t, s, 0, 3)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(opts.Dir, segmentName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of record 2: its CRC fails, and replay treats
	// everything from it on as the torn tail (records 2 and 3 are gone).
	off := headerSize
	_, _, n, err := decodeFrame(data[off:])
	if err != nil {
		t.Fatal(err)
	}
	data[off+n+frameOverhead+2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	st, _, err := Recover(opts.Dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantWindow(t, st, 0, 0)
}

func TestWALGapBetweenSegmentsFails(t *testing.T) {
	opts := testOpts(t)
	s := mustOpen(t, opts)
	ingestN(t, s, 0, 3)
	snap := &Snapshot{LSN: s.LastLSN(), WindowSQL: []string{"q0", "q1", "q2"}, WindowTotal: 3}
	if err := s.WriteSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	ingestN(t, s, 3, 2) // records 4, 5 land in a fresh segment
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Losing the snapshot AND the first segment leaves records 4..5
	// dangling with nothing covering 1..3: recovery must fail loudly.
	if err := os.Remove(filepath.Join(opts.Dir, snapshotName(3))); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(opts.Dir, segmentName(1))); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Recover(opts.Dir, 0); !errors.Is(err, ErrGap) {
		t.Fatalf("err = %v, want ErrGap", err)
	}
}

func TestWALBadHeaderFails(t *testing.T) {
	opts := testOpts(t)
	s := mustOpen(t, opts)
	ingestN(t, s, 0, 1)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(opts.Dir, segmentName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[4] = 99 // unknown format version
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Recover(opts.Dir, 0); !errors.Is(err, ErrBadSegment) {
		t.Fatalf("err = %v, want ErrBadSegment", err)
	}
}

func TestSnapshotRotationAndRetention(t *testing.T) {
	opts := testOpts(t)
	opts.Retain = 2
	s := mustOpen(t, opts)
	for round := 0; round < 4; round++ {
		ingestN(t, s, round*10, 2)
		snap := &Snapshot{LSN: s.LastLSN(), WindowSQL: []string{"w"}, WindowTotal: uint64(round)}
		if err := s.WriteSnapshot(snap); err != nil {
			t.Fatal(err)
		}
		// A record after each snapshot forces the rotated segment open.
		ingestN(t, s, round*10+2, 1)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	snaps, err := listByLSN(opts.Dir, parseSnapshotName)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 {
		t.Fatalf("retained %d snapshots, want 2: %v", len(snaps), snaps)
	}
	segs, err := listByLSN(opts.Dir, parseSegmentName)
	if err != nil {
		t.Fatal(err)
	}
	// Segments wholly below the oldest retained snapshot are pruned.
	for _, first := range segs[:len(segs)-1] {
		if first+2 <= snaps[0] { // heuristic: each segment holds 3 records
			t.Fatalf("segment %d survived below oldest retained snapshot %d (segs %v)", first, snaps[0], segs)
		}
	}
	// And the survivors still recover to the latest state.
	st, _, err := Recover(opts.Dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.LSN != 12 {
		t.Fatalf("LSN = %d, want 12", st.LSN)
	}
	if got := st.WindowSQL[len(st.WindowSQL)-1]; got != "q32" {
		t.Fatalf("newest window entry %q, want q32", got)
	}
}

func TestSnapshotCorruptFallsBack(t *testing.T) {
	opts := testOpts(t)
	opts.Retain = 3
	s := mustOpen(t, opts)
	ingestN(t, s, 0, 2)
	if err := s.WriteSnapshot(&Snapshot{LSN: 2, WindowSQL: []string{"q0", "q1"}, WindowTotal: 2}); err != nil {
		t.Fatal(err)
	}
	ingestN(t, s, 2, 1)
	if err := s.WriteSnapshot(&Snapshot{LSN: 3, WindowSQL: []string{"q0", "q1", "q2"}, WindowTotal: 3}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest snapshot: recovery falls back to the older one
	// and replays the WAL records past it.
	if err := os.WriteFile(filepath.Join(opts.Dir, snapshotName(3)), []byte("{trunca"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, _, err := Recover(opts.Dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantWindow(t, st, 0, 2)
	if st.WindowTotal != 3 {
		t.Fatalf("total = %d", st.WindowTotal)
	}
}

func TestWindowCapClipsDuringReplay(t *testing.T) {
	opts := testOpts(t)
	s := mustOpen(t, opts)
	ingestN(t, s, 0, 10)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st, _, err := Recover(opts.Dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	wantWindow(t, st, 6, 9)
	if st.WindowTotal != 10 {
		t.Fatalf("total = %d, want 10 (clip must not change the lifetime count)", st.WindowTotal)
	}
}

func TestFsyncPolicies(t *testing.T) {
	for _, policy := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncOff} {
		opts := testOpts(t)
		opts.Fsync = policy
		opts.FsyncEvery = time.Millisecond
		s := mustOpen(t, opts)
		ingestN(t, s, 0, 5)
		if err := s.Sync(); err != nil {
			t.Fatalf("%v: Sync: %v", policy, err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("%v: Close: %v", policy, err)
		}
		st, _, err := Recover(opts.Dir, 0)
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		wantWindow(t, st, 0, 4)
	}
}

func TestParseFsync(t *testing.T) {
	for in, want := range map[string]FsyncPolicy{
		"": FsyncInterval, "interval": FsyncInterval,
		"always": FsyncAlways, "per-record": FsyncAlways,
		"off": FsyncOff, "none": FsyncOff,
	} {
		got, err := ParseFsync(in)
		if err != nil || got != want {
			t.Fatalf("ParseFsync(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseFsync("sometimes"); err == nil {
		t.Fatal("ParseFsync accepted garbage")
	}
}

func TestAppendAfterCloseErrors(t *testing.T) {
	s := mustOpen(t, testOpts(t))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendIngest([]string{"q"}); err == nil {
		t.Fatal("append after close succeeded")
	}
	if err := s.Sync(); err == nil {
		t.Fatal("sync after close succeeded")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestShouldSnapshotCadence(t *testing.T) {
	opts := testOpts(t)
	opts.SnapshotEvery = 3
	s := mustOpen(t, opts)
	ingestN(t, s, 0, 2)
	if s.ShouldSnapshot() {
		t.Fatal("2 records < 3 triggered a snapshot")
	}
	ingestN(t, s, 2, 1)
	if !s.ShouldSnapshot() {
		t.Fatal("3 records did not trigger a snapshot")
	}
	if err := s.WriteSnapshot(&Snapshot{LSN: s.LastLSN()}); err != nil {
		t.Fatal(err)
	}
	if s.ShouldSnapshot() {
		t.Fatal("fresh snapshot still wants another")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
