package durable

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// fuzzRecord is one decoded record captured during a scan.
type fuzzRecord struct {
	t       RecordType
	payload []byte
}

// collectScan runs scanSegment over data, collecting every intact record.
func collectScan(data []byte) (recs []fuzzRecord, consumed int, clean bool, err error) {
	consumed, clean, err = scanSegment(data, func(t RecordType, payload []byte) error {
		recs = append(recs, fuzzRecord{t: t, payload: append([]byte(nil), payload...)})
		return nil
	})
	return recs, consumed, clean, err
}

// FuzzWALDecode throws arbitrary bytes at the segment decoder and checks
// its structural contract: never panic, never read past the data, report
// either a clean scan, a torn tail whose truncation point rescans
// cleanly to the identical records, or a structured ErrBadSegment.
func FuzzWALDecode(f *testing.F) {
	// Seed with a real log file: a store's scripted session, read back
	// from disk, so the corpus starts from genuinely valid frames.
	dir := f.TempDir()
	if err := runCrashScript(dir); err != nil {
		f.Fatal(err)
	}
	segs, err := listByLSN(dir, parseSegmentName)
	if err != nil || len(segs) == 0 {
		f.Fatalf("no seed segments (err %v)", err)
	}
	for _, first := range segs {
		data, err := os.ReadFile(filepath.Join(dir, segmentName(first)))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		f.Add(data[:len(data)-3]) // torn tail
		if len(data) > headerSize+4 {
			mut := append([]byte(nil), data...)
			mut[headerSize+4] ^= 0xff // corrupt first record
			f.Add(mut)
		}
	}
	f.Add([]byte{})
	f.Add(appendHeader(nil))
	f.Add([]byte("AVWL")) // magic but no version
	f.Add(appendFrame(appendHeader(nil), RecordIngest, []byte(`{"sqls":["q"]}`)))
	f.Add(appendFrame(appendHeader(nil), 200, []byte("unknown type")))
	f.Add(append(appendHeader(nil), 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 1)) // absurd length prefix

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, consumed, clean, err := collectScan(data)
		if err != nil {
			// The only structured failure the scan itself produces is a
			// bad header; the collector never errors.
			if !errors.Is(err, ErrBadSegment) {
				t.Fatalf("err = %v, want ErrBadSegment", err)
			}
			if consumed != 0 || clean || len(recs) != 0 {
				t.Fatalf("bad header yielded consumed=%d clean=%v recs=%d", consumed, clean, len(recs))
			}
			return
		}
		if consumed < headerSize || consumed > len(data) {
			t.Fatalf("consumed %d out of range [%d, %d]", consumed, headerSize, len(data))
		}
		if clean != (consumed == len(data)) {
			t.Fatalf("clean=%v but consumed %d of %d", clean, consumed, len(data))
		}
		// Truncating at the reported point must rescan cleanly to the
		// exact same records — that is what recovery relies on when it
		// cuts a torn tail.
		recs2, consumed2, clean2, err2 := collectScan(data[:consumed])
		if err2 != nil || !clean2 || consumed2 != consumed {
			t.Fatalf("rescan of truncation point: consumed=%d clean=%v err=%v", consumed2, clean2, err2)
		}
		if len(recs2) != len(recs) {
			t.Fatalf("rescan yielded %d records, want %d", len(recs2), len(recs))
		}
		for i := range recs {
			if recs2[i].t != recs[i].t || !bytes.Equal(recs2[i].payload, recs[i].payload) {
				t.Fatalf("rescan record %d diverged", i)
			}
		}
	})
}
