package obs

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test.count", "test counter")
	g := r.Gauge("test.gauge", "test gauge")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				c.Add(2)
				g.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if got, want := c.Value(), int64(workers*per*3); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got, want := g.Value(), float64(workers*per)*0.5; got != want {
		t.Errorf("gauge = %g, want %g", got, want)
	}
	c.Add(-5)
	if got := c.Value(); got != int64(workers*per*3) {
		t.Errorf("negative Add changed counter to %d", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test.hist", "test histogram", 1, 10, 100)
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w%4) * 5) // 0, 5, 10, 15 → buckets ≤1, ≤10, ≤10, ≤100
			}
		}(w)
	}
	wg.Wait()
	if got, want := h.Count(), int64(workers*per); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
	snap := r.Snapshot().Histograms[0]
	// Per-worker values: workers 0,4 → 0 (≤1); 1,5 → 5 (≤10); 2,6 → 10 (≤10); 3,7 → 15 (≤100).
	if snap.Buckets[0] != 2*per || snap.Buckets[1] != 4*per || snap.Buckets[2] != 2*per {
		t.Errorf("bucket counts = %v, want [%d %d %d 0]", snap.Buckets, 2*per, 4*per, 2*per)
	}
	wantSum := float64(per) * (0 + 5 + 10 + 15) * 2
	if snap.Sum != wantSum {
		t.Errorf("sum = %g, want %g", snap.Sum, wantSum)
	}
}

func TestSnapshotDeterminism(t *testing.T) {
	r := NewRegistry()
	// Register in non-alphabetical order.
	r.Counter("z.last", "z").Add(3)
	r.Counter("a.first", "a").Inc()
	r.Gauge("m.mid", "m").Set(2.5)
	r.Histogram("b.hist", "b", 1, 2).Observe(1.5)
	s1, s2 := r.Snapshot(), r.Snapshot()
	if s1.Text() != s2.Text() {
		t.Fatal("two snapshots of the same state rendered differently")
	}
	if s1.Counters[0].Name != "a.first" || s1.Counters[1].Name != "z.last" {
		t.Errorf("counters not name-sorted: %+v", s1.Counters)
	}
	var buf1, buf2 strings.Builder
	s1.WritePrometheus(&buf1)
	s2.WritePrometheus(&buf2)
	if buf1.String() != buf2.String() {
		t.Fatal("prometheus rendering not deterministic")
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", 1)
	c.Inc()
	g.Set(4)
	h.Observe(0.5)
	r.Reset()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Errorf("Reset left values: c=%d g=%g hc=%d hs=%g", c.Value(), g.Value(), h.Count(), h.Sum())
	}
	// Registrations survive.
	if r.Counter("c", "") != c {
		t.Error("Reset dropped the counter registration")
	}
}

func TestSpanTiming(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	ran := false
	r.Time("stage.work", func() {
		ran = true
		time.Sleep(time.Millisecond)
	})
	if !ran {
		t.Fatal("Time did not run fn")
	}
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 || snap.Histograms[0].Name != "stage.work.seconds" {
		t.Fatalf("span histogram missing: %+v", snap.Histograms)
	}
	h := snap.Histograms[0]
	if h.Count != 1 || h.Sum < 0.001 {
		t.Errorf("span recorded count=%d sum=%g, want 1 observation ≥ 1ms", h.Count, h.Sum)
	}

	// Disabled registry: fn still runs, nothing recorded.
	r2 := NewRegistry()
	ran = false
	r2.Time("stage.work", func() { ran = true })
	if !ran {
		t.Fatal("disabled Time did not run fn")
	}
	if len(r2.Snapshot().Histograms) != 0 {
		t.Error("disabled Time registered a histogram")
	}
}

func TestQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", "", 1, 2, 4, 8)
	for i := 0; i < 100; i++ {
		h.Observe(1.5) // all in the (1,2] bucket
	}
	snap := r.Snapshot().Histograms[0]
	p50 := snap.Quantile(0.5)
	if p50 < 1 || p50 > 2 {
		t.Errorf("p50 = %g, want within (1,2]", p50)
	}
}

func TestLoggerFormat(t *testing.T) {
	var buf strings.Builder
	l := NewLogger()
	l.SetOutput(&buf)
	l.SetLevel(LevelInfo)
	l.now = func() time.Time { return time.Date(2026, 8, 5, 10, 0, 0, 0, time.UTC) }

	l.Log(LevelDebug, "dropped.event") // below gate
	l.Log(LevelInfo, "advisor.select", "selector", "RLView", "views", 3, "utility", 1.25, "note", "two words")

	got := buf.String()
	want := `ts=2026-08-05T10:00:00.000Z level=info event=advisor.select selector=RLView views=3 utility=1.25 note="two words"` + "\n"
	if got != want {
		t.Errorf("log line:\n got %q\nwant %q", got, want)
	}
}

func TestLoggerSilentByDefault(t *testing.T) {
	l := NewLogger()
	l.Log(LevelError, "nobody.listening", "k", "v") // must not panic, no writer
	if l.Enabled(LevelError) {
		t.Error("fresh logger should be off")
	}
}

func TestHandlerServesMetricsExpvarPprof(t *testing.T) {
	r := NewRegistry()
	r.Counter("http.test.count", "a counter").Add(7)
	r.Gauge("http.test.gauge", "a gauge").Set(1.5)
	r.Histogram("http.test.hist", "a histogram", 0.1, 1).Observe(0.5)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	if !r.Enabled() {
		t.Error("mounting the handler should enable the registry")
	}

	body := httpGet(t, srv.URL+"/metrics")
	for _, want := range []string{
		"# TYPE autoview_http_test_count_total counter",
		"autoview_http_test_count_total 7",
		"autoview_http_test_gauge 1.5",
		`autoview_http_test_hist_bucket{le="1"} 1`,
		`autoview_http_test_hist_bucket{le="+Inf"} 1`,
		"autoview_http_test_hist_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}

	if vars := httpGet(t, srv.URL+"/debug/vars"); !strings.Contains(vars, "autoview") {
		t.Error("/debug/vars missing the autoview var")
	}
	if idx := httpGet(t, srv.URL+"/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Error("/debug/pprof/ index missing profiles")
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	res, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	b, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, res.StatusCode)
	}
	return string(b)
}

// BenchmarkObsOverhead guards the disabled-path cost of instrumentation
// left in hot code: with no sink attached each operation must stay within
// a few nanoseconds (the acceptance bar is < 5 ns/op for the span path).
func BenchmarkObsOverhead(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench.count", "")
	g := r.Gauge("bench.gauge", "")
	fn := func() {}
	b.Run("time-disabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r.Time("bench.span", fn)
		}
	})
	b.Run("startspan-disabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r.StartSpan("bench.span")()
		}
	})
	b.Run("log-disabled", func(b *testing.B) {
		l := NewLogger()
		for i := 0; i < b.N; i++ {
			l.Log(LevelInfo, "bench.event", "k", 1)
		}
	})
	b.Run("counter-inc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("gauge-set", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.Set(1)
		}
	})
	b.Run("time-enabled", func(b *testing.B) {
		r.SetEnabled(true)
		defer r.SetEnabled(false)
		for i := 0; i < b.N; i++ {
			r.Time("bench.span", fn)
		}
	})
}

func TestServeHandleShutdown(t *testing.T) {
	r := NewRegistry()
	r.Counter("shutdown.test.count", "a counter").Inc()
	h, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	if h.Addr() == "" {
		t.Fatal("no bound address")
	}
	if body := httpGet(t, "http://"+h.Addr()+"/metrics"); !strings.Contains(body, "autoview_shutdown_test_count_total 1") {
		t.Errorf("metrics before shutdown missing counter:\n%s", body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := h.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// Idempotent, and the listener is really closed.
	if err := h.Shutdown(ctx); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
	if _, err := http.Get("http://" + h.Addr() + "/metrics"); err == nil {
		t.Error("endpoint still reachable after shutdown")
	}
}

func TestNilHandleIsSafe(t *testing.T) {
	var h *Handle
	if h.Addr() != "" {
		t.Error("nil handle has an address")
	}
	if err := h.Shutdown(context.Background()); err != nil {
		t.Errorf("nil shutdown: %v", err)
	}
}
