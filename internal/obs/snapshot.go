package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// CounterSnap is one counter's snapshot.
type CounterSnap struct {
	Name, Help string
	Value      int64
}

// GaugeSnap is one gauge's snapshot.
type GaugeSnap struct {
	Name, Help string
	Value      float64
}

// HistSnap is one histogram's snapshot. Buckets holds per-bucket counts
// aligned with Bounds, plus one trailing +Inf bucket.
type HistSnap struct {
	Name, Help string
	Bounds     []float64
	Buckets    []int64
	Sum        float64
	Count      int64
}

// Mean returns the average observation (0 when empty).
func (h HistSnap) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// inside the bucket that crosses the target rank. Observations in the
// +Inf bucket clamp to the largest finite bound.
func (h HistSnap) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	rank := q * float64(h.Count)
	var cum int64
	for i, c := range h.Buckets {
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		hi := h.Bounds[len(h.Bounds)-1]
		lo := 0.0
		if i < len(h.Bounds) {
			hi = h.Bounds[i]
		}
		if i > 0 {
			lo = h.Bounds[i-1]
		}
		if c == 0 {
			return hi
		}
		frac := (rank - float64(prev)) / float64(c)
		return lo + (hi-lo)*frac
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Snapshot is a point-in-time, name-sorted copy of a registry. Two
// snapshots of identical metric states render identically.
type Snapshot struct {
	Counters   []CounterSnap
	Gauges     []GaugeSnap
	Histograms []HistSnap
}

// Text renders the snapshot as an aligned human-readable table (the
// -stats output of the binaries).
func (s Snapshot) Text() string {
	var b strings.Builder
	if len(s.Counters) > 0 {
		b.WriteString("counters:\n")
		for _, c := range s.Counters {
			fmt.Fprintf(&b, "  %-28s %12d  %s\n", c.Name, c.Value, c.Help)
		}
	}
	if len(s.Gauges) > 0 {
		b.WriteString("gauges:\n")
		for _, g := range s.Gauges {
			fmt.Fprintf(&b, "  %-28s %12.6g  %s\n", g.Name, g.Value, g.Help)
		}
	}
	if len(s.Histograms) > 0 {
		b.WriteString("histograms:\n")
		for _, h := range s.Histograms {
			fmt.Fprintf(&b, "  %-28s count=%-6d sum=%-12.6g mean=%-10.4g p50=%-10.3g p95=%-10.3g\n",
				h.Name, h.Count, h.Sum, h.Mean(), h.Quantile(0.5), h.Quantile(0.95))
		}
	}
	return b.String()
}

// promName maps a dotted metric name to a Prometheus identifier with the
// autoview namespace: "advisor.select.seconds" →
// "autoview_advisor_select_seconds".
func promName(name string) string {
	var b strings.Builder
	b.WriteString("autoview_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (counters get the conventional _total suffix; histograms emit
// cumulative _bucket series plus _sum and _count).
func (s Snapshot) WritePrometheus(w io.Writer) {
	for _, c := range s.Counters {
		n := promName(c.Name) + "_total"
		_, _ = fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", n, c.Help, n, n, c.Value)
	}
	for _, g := range s.Gauges {
		n := promName(g.Name)
		_, _ = fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
			n, g.Help, n, n, formatFloat(g.Value))
	}
	for _, h := range s.Histograms {
		n := promName(h.Name)
		_, _ = fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", n, h.Help, n)
		var cum int64
		for i, bound := range h.Bounds {
			cum += h.Buckets[i]
			_, _ = fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, formatFloat(bound), cum)
		}
		_, _ = fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, h.Count)
		_, _ = fmt.Fprintf(w, "%s_sum %s\n", n, formatFloat(h.Sum))
		_, _ = fmt.Fprintf(w, "%s_count %d\n", n, h.Count)
	}
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
