package obs

import "time"

// A span is a named, timed region of the pipeline. Completing a span
// records its duration (in seconds) into the histogram "<name>.seconds"
// and emits a debug event "<name>" with a dur_ms field. When the registry
// is disabled both helpers reduce to a single atomic load, so spans can
// stay in hot paths permanently.

var noop = func() {}

// StartSpan begins the named span on the Default registry and returns the
// function that completes it (use with defer).
func StartSpan(name string) func() { return Default.StartSpan(name) }

// Time runs fn under the named span on the Default registry.
func Time(name string, fn func()) { Default.Time(name, fn) }

// StartSpan begins a named span; the returned closure records the elapsed
// time when called. Disabled registries return a no-op immediately.
func (r *Registry) StartSpan(name string) func() {
	if !r.enabled.Load() {
		return noop
	}
	h := r.Histogram(name+".seconds", "duration of the "+name+" span")
	start := time.Now()
	return func() {
		d := time.Since(start)
		h.Observe(d.Seconds())
		Debug(name, "dur_ms", float64(d.Microseconds())/1e3)
	}
}

// Time runs fn under the named span.
func (r *Registry) Time(name string, fn func()) {
	if !r.enabled.Load() {
		fn()
		return
	}
	stop := r.StartSpan(name)
	fn()
	stop()
}

// ObserveSpan records an externally measured duration into the named
// span's histogram (for callers that cannot wrap the region in a closure,
// e.g. accumulated sub-phase time inside a loop). It is a no-op when the
// registry is disabled.
func (r *Registry) ObserveSpan(name string, d time.Duration) {
	if !r.enabled.Load() {
		return
	}
	r.Histogram(name+".seconds", "duration of the "+name+" span").Observe(d.Seconds())
}
