package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing int64. All methods are lock-free
// and safe for concurrent use.
type Counter struct {
	v          atomic.Int64
	name, help string
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored to keep the counter monotone).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Name returns the registered name.
func (c *Counter) Name() string { return c.name }

// Gauge is a float64 that can go up and down (last-write-wins Set plus a
// CAS-loop Add). Safe for concurrent use.
type Gauge struct {
	bits       atomic.Uint64
	name, help string
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add atomically adds delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Name returns the registered name.
func (g *Gauge) Name() string { return g.name }

// atomicFloat is a CAS-accumulated float64.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) Value() float64 { return math.Float64frombits(f.bits.Load()) }

// DefBuckets are the default histogram bounds: latencies in seconds from
// 1µs to 100s, a decade apart. Span histograms use these.
var DefBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10, 100}

// Histogram counts observations into fixed buckets (cumulative counts are
// derived at snapshot/render time; the stored counts are per-bucket).
// Observe is lock-free and safe for concurrent use.
type Histogram struct {
	name, help string
	bounds     []float64      // ascending upper bounds; +Inf implicit
	counts     []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	sum        atomicFloat
	count      atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Name returns the registered name.
func (h *Histogram) Name() string { return h.name }
