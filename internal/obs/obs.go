// Package obs is the system's observability layer: counters, gauges and
// fixed-bucket histograms behind a Registry, a span/stage-timer API, and a
// leveled structured event logger. It is dependency-free (standard library
// only) and built so that instrumentation left in hot paths costs nearly
// nothing when nobody is watching:
//
//   - Counters and gauges are single atomic operations, always on.
//   - Spans (obs.Time, obs.StartSpan) check an atomic enabled flag first
//     and skip the clock reads entirely when the registry is disabled —
//     BenchmarkObsOverhead guards this path at a few nanoseconds per call.
//   - Events check an atomic level gate and are silent by default.
//
// Instrumented packages register their metrics against the package-level
// Default registry at init time and record into them directly:
//
//	var execCount = obs.Default.Counter("engine.exec.count", "plan executions")
//	...
//	execCount.Inc()
//
// Stage timings use the span helpers:
//
//	obs.Time("advisor.select", func() { sel = pickViews(p) })
//
// which records into the histogram "advisor.select.seconds" when enabled.
//
// Binaries opt in with obs.Enable() (wired to their -stats flag) and/or
// obs.Serve (wired to -obs-addr), which exposes /metrics in Prometheus
// text format, /debug/vars (expvar) and /debug/pprof. See OBSERVABILITY.md
// at the repository root for the full metric and span catalog.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Default is the process-wide registry every instrumented package records
// into. It starts disabled: counters and gauges still count (they are
// plain atomics), but spans skip their clock reads and Snapshot-driven
// sinks are simply never invoked.
var Default = NewRegistry()

// Enable turns on span timing (and anything else gated on the Default
// registry's enabled flag).
func Enable() { Default.SetEnabled(true) }

// Disable turns span timing back off.
func Disable() { Default.SetEnabled(false) }

// Enabled reports whether the Default registry is enabled.
func Enabled() bool { return Default.Enabled() }

// Registry holds named metrics. All methods are safe for concurrent use;
// metric registration is get-or-create, so concurrent registrations of
// the same name share one metric.
type Registry struct {
	enabled atomic.Bool

	mu     sync.Mutex
	ctrs   map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty, disabled registry.
func NewRegistry() *Registry {
	return &Registry{
		ctrs:   make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// SetEnabled flips the registry's enabled flag (span timing gate).
func (r *Registry) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports the enabled flag.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

// Counter returns the counter registered under name, creating it on first
// use. The help string of the first registration wins.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.ctrs[name]; ok {
		return c
	}
	c := &Counter{name: name, help: help}
	r.ctrs[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name, help: help}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds (ascending; +Inf is implicit) on first
// use. Empty buckets select DefBuckets.
func (r *Registry) Histogram(name, help string, buckets ...float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.histogramLocked(name, help, buckets)
}

func (r *Registry) histogramLocked(name, help string, buckets []float64) *Histogram {
	if h, ok := r.hists[name]; ok {
		return h
	}
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	h := &Histogram{
		name:   name,
		help:   help,
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	r.hists[name] = h
	return h
}

// Reset zeroes every registered metric (registrations are kept). Intended
// for tests and for isolating consecutive runs in one process.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.ctrs {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.bits.Store(0)
	}
	for _, h := range r.hists {
		for i := range h.counts {
			h.counts[i].Store(0)
		}
		h.sum.bits.Store(0)
		h.count.Store(0)
	}
}

// Snapshot returns a deterministic (name-sorted) copy of every registered
// metric's current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var s Snapshot
	for _, c := range r.ctrs {
		s.Counters = append(s.Counters, CounterSnap{Name: c.name, Help: c.help, Value: c.Value()})
	}
	for _, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeSnap{Name: g.name, Help: g.help, Value: g.Value()})
	}
	for _, h := range r.hists {
		hs := HistSnap{
			Name:    h.name,
			Help:    h.help,
			Bounds:  append([]float64(nil), h.bounds...),
			Buckets: make([]int64, len(h.counts)),
			Sum:     h.sum.Value(),
			Count:   h.count.Load(),
		}
		for i := range h.counts {
			hs.Buckets[i] = h.counts[i].Load()
		}
		s.Histograms = append(s.Histograms, hs)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}
