package obs

import (
	"errors"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// publishOnce guards the process-wide expvar registration ("autoview"),
// which panics on duplicate names.
var publishOnce sync.Once

// Handler returns the observability endpoint:
//
//	/metrics      Prometheus text exposition of the registry
//	/debug/vars   expvar JSON (includes an "autoview" snapshot var)
//	/debug/pprof  net/http/pprof profiles
//
// Mounting the handler also enables the registry, so spans start timing
// as soon as a sink exists.
func (r *Registry) Handler() http.Handler {
	r.SetEnabled(true)
	publishOnce.Do(func() {
		expvar.Publish("autoview", expvar.Func(func() any {
			snap := Default.Snapshot()
			out := make(map[string]any, len(snap.Counters)+len(snap.Gauges))
			for _, c := range snap.Counters {
				out[c.Name] = c.Value
			}
			for _, g := range snap.Gauges {
				out[g.Name] = g.Value
			}
			for _, h := range snap.Histograms {
				out[h.Name] = map[string]any{"count": h.Count, "sum": h.Sum, "mean": h.Mean()}
			}
			return out
		}))
	})

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.Snapshot().WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		_, _ = fmt.Fprint(w, "autoview observability endpoint\n\n/metrics\n/debug/vars\n/debug/pprof/\n")
	})
	return mux
}

// Serve binds addr (e.g. "localhost:6060" or ":0"), serves the registry's
// Handler on it from a background goroutine, and returns the bound
// address. The listener lives for the life of the process — binaries wire
// this to their -obs-addr flag.
func Serve(addr string, r *Registry) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: r.Handler()}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			Error("obs.serve", "addr", ln.Addr().String(), "err", err.Error())
		}
	}()
	return ln.Addr().String(), nil
}

// Setup wires the standard observability command-line surface shared by
// the cmd/ binaries (-stats, -obs-addr, -log-level): it enables the
// default registry when stats or addr is set, serves the HTTP endpoint on
// addr, and attaches the event logger to w at the named level. It returns
// the bound HTTP address ("" when addr is empty).
func Setup(stats bool, addr, level string, w io.Writer) (string, error) {
	if stats || addr != "" {
		Enable()
	}
	bound := ""
	if addr != "" {
		var err error
		if bound, err = Serve(addr, Default); err != nil {
			return "", err
		}
	}
	if level != "" {
		lv, err := ParseLevel(level)
		if err != nil {
			return "", err
		}
		LogTo(w, lv)
	}
	return bound, nil
}
