package obs

import (
	"context"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// publishOnce guards the process-wide expvar registration ("autoview"),
// which panics on duplicate names.
var publishOnce sync.Once

// Handler returns the observability endpoint:
//
//	/metrics      Prometheus text exposition of the registry
//	/debug/vars   expvar JSON (includes an "autoview" snapshot var)
//	/debug/pprof  net/http/pprof profiles
//
// Mounting the handler also enables the registry, so spans start timing
// as soon as a sink exists.
func (r *Registry) Handler() http.Handler {
	r.SetEnabled(true)
	publishOnce.Do(func() {
		expvar.Publish("autoview", expvar.Func(func() any {
			snap := Default.Snapshot()
			out := make(map[string]any, len(snap.Counters)+len(snap.Gauges))
			for _, c := range snap.Counters {
				out[c.Name] = c.Value
			}
			for _, g := range snap.Gauges {
				out[g.Name] = g.Value
			}
			for _, h := range snap.Histograms {
				out[h.Name] = map[string]any{"count": h.Count, "sum": h.Sum, "mean": h.Mean()}
			}
			return out
		}))
	})

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.Snapshot().WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		_, _ = fmt.Fprint(w, "autoview observability endpoint\n\n/metrics\n/debug/vars\n/debug/pprof/\n")
	})
	return mux
}

// Handle is a running observability HTTP server. The zero of the type is
// a nil *Handle, which every method tolerates, so callers that serve
// conditionally (an empty -obs-addr) can hold one handle unconditionally.
type Handle struct {
	addr string
	srv  *http.Server
	done chan struct{}
}

// Addr returns the bound address ("" on a nil handle).
func (h *Handle) Addr() string {
	if h == nil {
		return ""
	}
	return h.addr
}

// Shutdown gracefully stops the server: it stops accepting connections
// and waits for in-flight requests (scrapes, profile downloads) to
// finish or ctx to expire, whichever comes first. Safe on a nil handle
// and idempotent.
func (h *Handle) Shutdown(ctx context.Context) error {
	if h == nil {
		return nil
	}
	err := h.srv.Shutdown(ctx)
	<-h.done // Serve goroutine has returned; its error (if any) is logged
	return err
}

// Serve binds addr (e.g. "localhost:6060" or ":0"), serves the registry's
// Handler on it from a background goroutine, and returns a Handle exposing
// the bound address and graceful Shutdown. Binaries wire this to their
// -obs-addr flag; short-lived ones may simply never call Shutdown.
func Serve(addr string, r *Registry) (*Handle, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	h := &Handle{
		addr: ln.Addr().String(),
		srv:  &http.Server{Handler: r.Handler()},
		done: make(chan struct{}),
	}
	go func() {
		defer close(h.done)
		if err := h.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			Error("obs.serve", "addr", h.addr, "err", err.Error())
		}
	}()
	return h, nil
}

// Setup wires the standard observability command-line surface shared by
// the cmd/ binaries (-stats, -obs-addr, -log-level): it enables the
// default registry when stats or addr is set, serves the HTTP endpoint on
// addr, and attaches the event logger to w at the named level. It returns
// the serving handle (nil when addr is empty; Handle methods are
// nil-safe, so callers may use it unconditionally).
func Setup(stats bool, addr, level string, w io.Writer) (*Handle, error) {
	if stats || addr != "" {
		Enable()
	}
	var h *Handle
	if addr != "" {
		var err error
		if h, err = Serve(addr, Default); err != nil {
			return nil, err
		}
	}
	if level != "" {
		lv, err := ParseLevel(level)
		if err != nil {
			return nil, err
		}
		LogTo(w, lv)
	}
	return h, nil
}
