package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders event severities. The zero logger sits at LevelOff, so all
// logging is silent until a sink is attached.
type Level int32

// Severity levels, least to most severe. LevelOff disables logging.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
	LevelOff
)

// ParseLevel maps a -log-level flag value to a Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	case "off", "":
		return LevelOff, nil
	default:
		return LevelOff, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
	}
}

// String returns the level's lowercase name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return "off"
	}
}

// Logger emits structured key=value events to an io.Writer. The level
// gate is a single atomic load, so a disabled logger costs nothing on hot
// paths; the writer is serialized behind a mutex.
type Logger struct {
	level atomic.Int32

	mu  sync.Mutex
	w   io.Writer
	now func() time.Time // test hook; nil means time.Now
}

// NewLogger returns a silent logger (no writer, LevelOff).
func NewLogger() *Logger {
	l := &Logger{}
	l.level.Store(int32(LevelOff))
	return l
}

// DefaultLogger backs the package-level event helpers. Silent by default.
var DefaultLogger = NewLogger()

// LogTo points the default logger at w with the given level — the one
// call a binary needs to surface pipeline events.
func LogTo(w io.Writer, level Level) {
	DefaultLogger.SetOutput(w)
	DefaultLogger.SetLevel(level)
}

// SetOutput attaches the sink. A nil writer silences the logger.
func (l *Logger) SetOutput(w io.Writer) {
	l.mu.Lock()
	l.w = w
	l.mu.Unlock()
}

// SetLevel sets the minimum emitted level.
func (l *Logger) SetLevel(level Level) { l.level.Store(int32(level)) }

// Enabled reports whether events at level would be emitted.
func (l *Logger) Enabled(level Level) bool { return level >= Level(l.level.Load()) }

// Log emits one event as a single key=value line:
//
//	ts=2026-08-05T10:31:02.123Z level=info event=advisor.select selector=RLView views=3
//
// kv is alternating key, value pairs; values are formatted with strconv
// for numbers and quoted only when they contain spaces or '='. Events
// below the level gate return after one atomic load.
func (l *Logger) Log(level Level, event string, kv ...any) {
	if !l.Enabled(level) {
		return
	}
	var b strings.Builder
	now := time.Now
	if l.now != nil {
		now = l.now
	}
	b.WriteString("ts=")
	b.WriteString(now().UTC().Format("2006-01-02T15:04:05.000Z"))
	b.WriteString(" level=")
	b.WriteString(level.String())
	b.WriteString(" event=")
	b.WriteString(event)
	for i := 0; i+1 < len(kv); i += 2 {
		b.WriteByte(' ')
		fmt.Fprintf(&b, "%v", kv[i])
		b.WriteByte('=')
		b.WriteString(formatValue(kv[i+1]))
	}
	b.WriteByte('\n')
	l.mu.Lock()
	if l.w != nil {
		// A failed log write has nowhere to be reported; drop it.
		_, _ = io.WriteString(l.w, b.String())
	}
	l.mu.Unlock()
}

func formatValue(v any) string {
	var s string
	switch x := v.(type) {
	case string:
		s = x
	case float64:
		return strconv.FormatFloat(x, 'g', 6, 64)
	case float32:
		return strconv.FormatFloat(float64(x), 'g', 6, 32)
	case error:
		s = x.Error()
	default:
		s = fmt.Sprintf("%v", x)
	}
	if strings.ContainsAny(s, " =\"\n") || s == "" {
		return strconv.Quote(s)
	}
	return s
}

// Debug emits a debug event on the default logger.
func Debug(event string, kv ...any) { DefaultLogger.Log(LevelDebug, event, kv...) }

// Info emits an info event on the default logger.
func Info(event string, kv ...any) { DefaultLogger.Log(LevelInfo, event, kv...) }

// Warn emits a warning event on the default logger.
func Warn(event string, kv ...any) { DefaultLogger.Log(LevelWarn, event, kv...) }

// Error emits an error event on the default logger.
func Error(event string, kv ...any) { DefaultLogger.Log(LevelError, event, kv...) }
