// Joborder runs the full pipeline on the JOB-like workload (the IMDB
// schema with 226 multi-join queries): pre-process, measure benefits,
// select views with RLView, apply, and compare against the BigSub
// baseline.
package main

import (
	"fmt"
	"log"
	"sort"

	"autoview/internal/core"
	"autoview/internal/engine"
	"autoview/internal/metrics"
	"autoview/internal/workload"
)

func main() {
	w := workload.JOB()
	fmt.Printf("JOB workload: %d queries over the %d-table IMDB schema\n",
		len(w.Queries), w.Cat.Len())

	cfg := core.DefaultConfig()
	cfg.Estimator = core.EstimatorActual // measured benefits for the demo
	cfg.RL.Epochs = 30                   // trimmed for example runtime
	cfg.RL.LearnEvery = 2

	adv := core.NewAdvisor(w.Cat, engine.New(w.Populate()), cfg)
	pre := adv.Preprocess(w.Plans())
	fmt.Printf("pre-process: |Z|=%d candidates, %d overlapping pairs\n",
		len(pre.Candidates), pre.OverlappingPairs())

	p, err := adv.BuildProblem(w.Plans(), pre)
	if err != nil {
		log.Fatal(err)
	}

	// RLView selection.
	cfg.Selector = core.SelectorRLView
	adv.Cfg = cfg
	rlSel, err := adv.Select(p)
	if err != nil {
		log.Fatal(err)
	}
	rlReport, err := adv.Apply(p, rlSel)
	if err != nil {
		log.Fatal(err)
	}

	// BigSub baseline on the same problem.
	cfg.Selector = core.SelectorBigSub
	adv.Cfg = cfg
	bsSel, err := adv.Select(p)
	if err != nil {
		log.Fatal(err)
	}
	bsReport, err := adv.Apply(p, bsSel)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nend-to-end comparison:")
	fmt.Println(" ", rlReport)
	fmt.Println(" ", bsReport)
	fmt.Printf("RLView saves %.2f%% vs BigSub %.2f%% (improvement %.1f%%)\n",
		rlReport.SavedRatio, bsReport.SavedRatio,
		metrics.Improvement(rlReport.SavedRatio, bsReport.SavedRatio))

	// Show the most valuable selected views.
	type pick struct {
		id     string
		shares int
		net    float64
	}
	var picks []pick
	bmax := p.Instance.MaxBenefits()
	for j, z := range rlSel.Z {
		if !z {
			continue
		}
		c := p.Candidates[j]
		picks = append(picks, pick{c.View.ID, len(c.Queries), bmax[j] - c.Overhead})
	}
	sort.Slice(picks, func(a, b int) bool { return picks[a].net > picks[b].net })
	fmt.Println("\ntop selected views (by net benefit ceiling):")
	for i, pk := range picks {
		if i == 5 {
			break
		}
		fmt.Printf("  %s shared by %d queries, net ceiling $%.5f\n", pk.id, pk.shares, pk.net)
	}
}
