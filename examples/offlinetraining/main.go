// Offlinetraining demonstrates the paper's offline/online split (Fig. 3):
// a first advisory run collects DQN replay experiences into the metadata
// database; the database is persisted; a later run pretrains the DQN
// offline from it and fine-tunes online, converging with less exploration.
package main

import (
	"bytes"
	"fmt"
	"log"

	"autoview/internal/catalog"
	"autoview/internal/core"
	"autoview/internal/engine"
	"autoview/internal/workload"
)

func main() {
	w := workload.WK(workload.WKParams{
		Name: "offline-demo", Projects: 6, FactsPerProject: 2, DimsPerProject: 1,
		Queries: 120, FragsPerProject: 3, Skew: 1.2, ThreeWayFraction: 0.2,
		RowSkew: 1.5, UniqueFraction: 0.3, Seed: 909,
	})
	cfg := core.WKConfig()
	cfg.Estimator = core.EstimatorActual
	cfg.RL.Epochs = 15
	cfg.RL.LearnEvery = 2

	// --- Day 1: advise, collecting experiences -------------------------
	adv1 := core.NewAdvisor(w.Cat, engine.New(w.Populate()), cfg)
	pre := adv1.Preprocess(w.Plans())
	p1, err := adv1.BuildProblem(w.Plans(), pre)
	if err != nil {
		log.Fatal(err)
	}
	sel1, err := adv1.Select(p1)
	if err != nil {
		log.Fatal(err)
	}
	_, ne := adv1.Meta.Counts()
	fmt.Printf("day 1: RLView selected %d views (utility $%.4f), %d experiences collected\n",
		countTrue(sel1.Z), sel1.Utility, ne)

	// Persist the metadata database, as the paper's system stores the
	// memory pool between sessions.
	var store bytes.Buffer
	if err := adv1.Meta.Save(&store); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("metadata database persisted (%d bytes)\n", store.Len())

	// --- Day 2: fresh advisor, pretrained from the stored pool ---------
	adv2 := core.NewAdvisor(w.Cat, engine.New(w.Populate()), cfg)
	adv2.Meta = catalog.NewMetadataDB()
	if err := adv2.Meta.Load(&store); err != nil {
		log.Fatal(err)
	}
	adv2.Cfg.RLPretrainUpdates = 300
	adv2.Cfg.RL.Epochs = 8 // fewer online episodes, thanks to pretraining
	p2, err := adv2.BuildProblem(w.Plans(), pre)
	if err != nil {
		log.Fatal(err)
	}
	sel2, err := adv2.Select(p2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("day 2: pretrained RLView selected %d views (utility $%.4f) with %d online epochs\n",
		countTrue(sel2.Z), sel2.Utility, adv2.Cfg.RL.Epochs)

	rep, err := adv2.Apply(p2, sel2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("end-to-end:", rep)
}

func countTrue(z []bool) int {
	n := 0
	for _, b := range z {
		if b {
			n++
		}
	}
	return n
}
