// Quickstart walks the library's core objects on the paper's running
// example (Figure 2): parse the query, extract its subqueries, materialize
// a view on one, rewrite the query, and measure the benefit.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"autoview/internal/catalog"
	"autoview/internal/engine"
	"autoview/internal/plan"
	"autoview/internal/rewrite"
	"autoview/internal/storage"
)

func main() {
	// 1. A catalog with the example's two tables.
	cat := catalog.New()
	for _, t := range []*catalog.Table{
		{
			Name: "user_memo",
			Columns: []catalog.Column{
				{Name: "user_id", Type: catalog.TypeInt, Distinct: 100},
				{Name: "memo", Type: catalog.TypeString, Distinct: 40},
				{Name: "memo_type", Type: catalog.TypeString, Distinct: 4},
				{Name: "dt", Type: catalog.TypeString, Distinct: 8},
			},
			Stats: catalog.TableStats{Rows: 2000},
		},
		{
			Name: "user_action",
			Columns: []catalog.Column{
				{Name: "user_id", Type: catalog.TypeInt, Distinct: 100},
				{Name: "action", Type: catalog.TypeString, Distinct: 12},
				{Name: "type", Type: catalog.TypeInt, Distinct: 3},
				{Name: "dt", Type: catalog.TypeString, Distinct: 8},
			},
			Stats: catalog.TableStats{Rows: 3000},
		},
	} {
		if err := cat.Add(t); err != nil {
			log.Fatal(err)
		}
	}

	// 2. Deterministic synthetic data and an executor.
	store := storage.Populate(cat, rand.New(rand.NewSource(42)))
	exec := engine.New(store)
	pricing := engine.DefaultPricing()

	// 3. The paper's example query.
	sql := `select t1.user_id, count(*) as cnt
	  from ( select user_id, memo from user_memo where dt='v1' and memo_type = 'v2' ) t1
	  inner join ( select user_id, action from user_action where type = 1 and dt='v1' ) t2
	  on t1.user_id = t2.user_id
	  group by t1.user_id`
	q, err := plan.Parse(sql, cat)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("query plan:")
	fmt.Print(q)

	// 4. Its subqueries (s1, s2, s3 in the paper).
	subs := plan.ExtractSubqueries(q)
	fmt.Printf("\n%d subqueries extracted:\n", len(subs))
	for i, s := range subs {
		fmt.Printf("  s%d: root=%v, fingerprint=%s\n", i+1, s.Root.Op, s.Fingerprint.Short())
	}

	// 5. Execute the raw query and record its cost.
	_, rawUsage, err := exec.Execute(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nraw query: %d rows out, cost $%.6f\n", rawUsage.OutRows, rawUsage.Cost(pricing))

	// 6. Materialize a view on each subquery and measure the benefit
	//    B(q, v) = A(q) − A(q|v) (Definition 4).
	mgr := rewrite.NewManager(store)
	for i, s := range subs {
		v, err := mgr.Materialize(s.Root)
		if err != nil {
			log.Fatal(err)
		}
		benefit, _, rwUsage, err := rewrite.Benefit(exec, q, v, pricing)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("view on s%d (%s): overhead $%.6f, rewritten cost $%.6f, benefit $%.6f\n",
			i+1, v.ID, v.Overhead(pricing), rwUsage.Cost(pricing), benefit)
	}

	// 7. Overlap: the join subquery overlaps both leaf projections
	//    (Definition 5), so a query cannot use all three views at once.
	for i := range subs {
		for j := i + 1; j < len(subs); j++ {
			if plan.Overlapping(subs[i].Root, subs[j].Root) {
				fmt.Printf("s%d and s%d are overlapping subqueries\n", i+1, j+1)
			}
		}
	}
}
