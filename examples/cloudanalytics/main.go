// Cloudanalytics demonstrates the learned components on a multi-project
// cloud workload (WK1-style): it trains the Wide-Deep cost model on a
// sample of measured rewrites, compares its estimates against the
// traditional optimizer on held-out pairs, and then drives view selection
// from the learned estimates.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"autoview/internal/core"
	"autoview/internal/costbase"
	"autoview/internal/engine"
	"autoview/internal/featenc"
	"autoview/internal/rewrite"
	"autoview/internal/workload"
)

func main() {
	w := workload.WK(workload.WKParams{
		Name: "cloud", Projects: 8, FactsPerProject: 2, DimsPerProject: 1,
		Queries: 160, FragsPerProject: 3, Skew: 1.3, ThreeWayFraction: 0.2,
		RowSkew: 2.0, UniqueFraction: 0.4, Seed: 2024,
	})
	fmt.Printf("cloud workload: %d queries across %d projects\n",
		len(w.Queries), len(w.Cat.Projects()))

	// --- Part 1: cost estimation quality ---------------------------------
	store := w.Populate()
	exec := engine.New(store)
	mgr := rewrite.NewManager(store)
	pricing := engine.DefaultPricing()
	adv := core.NewAdvisor(w.Cat, exec, core.WKConfig())
	pre := adv.Preprocess(w.Plans())
	fmt.Printf("pre-process: |Z|=%d candidates\n", len(pre.Candidates))

	// Measure every (query, view) pair on the engine as ground truth.
	var pairs []costbase.Sample
	for _, cand := range pre.Candidates {
		v, err := mgr.Materialize(cand.Plan)
		if err != nil {
			log.Fatal(err)
		}
		for _, qi := range cand.Queries {
			q := w.Queries[qi].Plan
			rw, n := rewrite.Rewrite(q, []*rewrite.View{v})
			if n == 0 {
				continue
			}
			u, err := exec.Cost(rw)
			if err != nil {
				log.Fatal(err)
			}
			qu, err := exec.Cost(q)
			if err != nil {
				log.Fatal(err)
			}
			su, err := exec.Cost(cand.Plan)
			if err != nil {
				log.Fatal(err)
			}
			pairs = append(pairs, costbase.Sample{
				Q: q, V: cand.Plan,
				F:      featenc.Extract(q, cand.Plan, w.Cat),
				Actual: u.Cost(pricing) * 1e4,
				QCost:  qu.Cost(pricing) * 1e4,
				VCost:  su.Cost(pricing) * 1e4,
			})
		}
	}
	rng := rand.New(rand.NewSource(1))
	rng.Shuffle(len(pairs), func(i, j int) { pairs[i], pairs[j] = pairs[j], pairs[i] })
	split := len(pairs) * 7 / 10
	train, test := pairs[:split], pairs[split:]
	fmt.Printf("measured %d (query, view) pairs; %d train / %d test\n",
		len(pairs), len(train), len(test))

	scaled := pricing
	scaled.Alpha *= 1e4
	scaled.Beta *= 1e4
	scaled.Gamma *= 1e4
	optEst := &costbase.OptimizerEstimator{Cat: w.Cat, Pricing: scaled}
	dl := &costbase.DeepLearn{Cat: w.Cat, Pricing: scaled, Epochs: 25, Seed: 3}
	if err := dl.Fit(train); err != nil {
		log.Fatal(err)
	}
	report := func(name string, est costbase.Estimator) {
		var mae, mape float64
		n := 0
		for _, s := range test {
			pred := est.Predict(s)
			mae += math.Abs(pred - s.Actual)
			if s.Actual != 0 { //lint:allow floateq exact zero guards division by zero
				mape += math.Abs((pred - s.Actual) / s.Actual)
				n++
			}
		}
		fmt.Printf("  %-10s MAE=%.3f MAPE=%.1f%%\n",
			name, mae/float64(len(test)), 100*mape/float64(n))
	}
	fmt.Println("held-out estimation error (cost units):")
	report("Optimizer", optEst)
	report("DeepLearn", dl)

	// --- Part 2: selection driven by the learned estimator ----------------
	cfg := core.WKConfig()
	cfg.Estimator = core.EstimatorWideDeep
	cfg.Selector = core.SelectorRLView
	cfg.RL.Epochs = 20
	cfg.WDTrain.Epochs = 15
	cfg.WDTrain.BatchSize = 16
	adv2 := core.NewAdvisor(w.Cat, engine.New(w.Populate()), cfg)
	rep, err := adv2.Run(w.Plans())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nend-to-end with W-D + RLView:")
	fmt.Println(" ", rep)
}
