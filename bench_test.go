// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section VI). One Benchmark per artifact; each iteration reruns the full
// experiment at Quick scale and reports the experiment's headline numbers
// as custom metrics. Run with:
//
//	go test -bench=. -benchmem
package autoview_test

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"autoview/internal/core"
	"autoview/internal/experiments"
	"autoview/internal/featenc"
	"autoview/internal/nn"
	"autoview/internal/obs"
	"autoview/internal/plan"
	"autoview/internal/serve"
	"autoview/internal/widedeep"
	"autoview/internal/workload"
)

// BenchmarkNNTrainStep measures one mini-batch forward+backward+reduce
// through nn.Trainer, serial (Parallelism=1) vs parallel (NumCPU), at
// several batch sizes. Both settings produce bit-identical gradients;
// only wall-clock differs, so the serial/parallel ratio is the speedup
// of the data-parallel trainer on this machine.
func BenchmarkNNTrainStep(b *testing.B) {
	const inDim = 64
	layers := []int{inDim, 256, 256, 64, 1}
	for _, cfg := range []struct {
		name        string
		parallelism int
	}{
		{"serial", 1},
		{"parallel", 0}, // 0 → runtime.NumCPU()
	} {
		for _, batch := range []int{8, 32, 128} {
			b.Run(cfg.name+"/batch"+itoa(batch), func(b *testing.B) {
				rng := rand.New(rand.NewSource(1))
				mlp := nn.NewMLP("bench", layers, rng)
				params := mlp.Params()
				samples := make([]nn.Vec, batch)
				targets := make([]float64, batch)
				for i := range samples {
					samples[i] = make(nn.Vec, inDim)
					for j := range samples[i] {
						samples[i][j] = rng.Float64()*2 - 1
					}
					targets[i] = rng.Float64()
				}
				trainer := nn.NewTrainer(params, cfg.parallelism, func() ([]*nn.Param, nn.SampleFunc) {
					rep := mlp.ShareWeights()
					run := func(i int) float64 {
						y, back := rep.Forward(samples[i])
						d := y[0] - targets[i]
						back(nn.Vec{2 * d / float64(batch)})
						return d * d
					}
					return rep.Params(), run
				})
				opt := &nn.SGD{LR: 0.01}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					trainer.Step(batch)
					opt.Step(params)
				}
				b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "samples/s")
			})
		}
	}
}

// BenchmarkServeEstimate measures request throughput through the online
// advisor's estimate path: concurrent POST /v1/estimate requests (4
// pairs each) through a Parallelism-sized worker pool.
//
// cold disables the fingerprint caches (serve.Config.CacheSize -1), so
// every request pays JSON decode + SQL parse + feature extraction + the
// W-D forward — the pre-cache baseline. warm runs the default cache
// primed with one request, so iterations exercise the fingerprint-keyed
// hit path (pooled body read, zero-copy decode, cache lookups, encode).
// Both modes report req/s, pairs/s, and allocs/op; BENCH_6.json records
// them, and CI's bench smoke fails on warm-path alloc regression via
// TestEstimateWarmAlloc.
func BenchmarkServeEstimate(b *testing.B) {
	w := workload.WK(workload.WKParams{
		Name:            "bench",
		Projects:        4,
		FactsPerProject: 2,
		DimsPerProject:  1,
		Queries:         60,
		FragsPerProject: 3,
		Skew:            1.2,
		RowSkew:         1.5,
		Seed:            77,
	})
	cfg := core.DefaultConfig()
	cfg.Estimator = core.EstimatorWideDeep
	cfg.Selector = core.SelectorTopkBen
	cfg.WDTrain.Epochs = 2
	cfg.Seed = 7

	modes := []struct {
		name      string
		cacheSize int
	}{
		{"cold", -1}, // caching disabled: the full per-request path
		{"warm", 0},  // default cache, primed before the timer starts
	}
	for _, mode := range modes {
		for _, par := range []int{1, 4, 8} {
			b.Run(mode.name+"/parallelism"+itoa(par), func(b *testing.B) {
				srv, err := serve.New(w, cfg, serve.Config{
					Parallelism: par,
					MaxBatch:    64,
					BatchWindow: 200 * time.Microsecond,
					CacheSize:   mode.cacheSize,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer func() {
					ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
					defer cancel()
					if err := srv.Close(ctx); err != nil {
						b.Fatal(err)
					}
				}()
				handler := srv.Handler()

				// Pair every benchmark query with a bootstrap view's subquery.
				rec := httptest.NewRecorder()
				handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/views", nil))
				var vs struct {
					Views []struct {
						SQL string `json:"sql"`
					} `json:"views"`
				}
				if err := json.Unmarshal(rec.Body.Bytes(), &vs); err != nil || len(vs.Views) == 0 {
					b.Fatalf("bootstrap views: %v (%d views)", err, len(vs.Views))
				}
				type pair struct {
					Query string `json:"query"`
					View  string `json:"view"`
				}
				pairs := make([]pair, 4)
				for i := range pairs {
					pairs[i] = pair{Query: w.Queries[i].SQL, View: vs.Views[i%len(vs.Views)].SQL}
				}
				body, err := json.Marshal(map[string][]pair{"pairs": pairs})
				if err != nil {
					b.Fatal(err)
				}

				post := func() int {
					req := httptest.NewRequest(http.MethodPost, "/v1/estimate", bytes.NewReader(body))
					rec := httptest.NewRecorder()
					handler.ServeHTTP(rec, req)
					if rec.Code != http.StatusOK {
						b.Fatalf("estimate status %d: %s", rec.Code, rec.Body.String())
					}
					return rec.Code
				}
				if mode.cacheSize >= 0 {
					post() // prime the estimate cache
				}

				b.ReportAllocs()
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						post()
					}
				})
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
				b.ReportMetric(4*float64(b.N)/b.Elapsed().Seconds(), "pairs/s")
			})
		}
	}
}

// BenchmarkPredictAlloc measures the serving-critical single-inference
// path: one widedeep.Model.Predict over a realistic (query, view) feature
// set, reporting ns/op and — the regression guard — allocs/op. The
// steady-state fast path must stay at 0 allocs/op (see the allocation
// tests in internal/widedeep); any per-call garbage shows up here first.
func BenchmarkPredictAlloc(b *testing.B) {
	w := workload.WK(workload.WKParams{
		Name:            "bench",
		Projects:        2,
		FactsPerProject: 2,
		DimsPerProject:  1,
		Queries:         8,
		FragsPerProject: 2,
		Skew:            1.2,
		RowSkew:         1.5,
		Seed:            77,
	})
	q, err := plan.Parse(w.Queries[0].SQL, w.Cat)
	if err != nil {
		b.Fatal(err)
	}
	subs := plan.ExtractSubqueries(q)
	if len(subs) == 0 {
		b.Fatal("no subqueries to pair with")
	}
	f := featenc.Extract(q, subs[0].Root, w.Cat)

	rng := rand.New(rand.NewSource(9))
	m := widedeep.New(featenc.NewVocab(w.Cat, nil), widedeep.Config{
		Encoder: featenc.Config{EmbedDim: 16, Hidden: 16},
	}, rng)
	samples := []widedeep.Sample{{F: f, Y: 1}, {F: f, Y: 2}}
	if _, err := m.Fit(samples, widedeep.TrainConfig{Epochs: 1, BatchSize: 2}); err != nil {
		b.Fatal(err)
	}

	// Pin the obs registry off: earlier benchmarks in the same process
	// (BenchmarkServeEstimate) mount the obs endpoint, which enables
	// span timing globally, and an enabled span allocates. That cost
	// belongs to bench-obs; this benchmark isolates the inference path.
	wasEnabled := obs.Enabled()
	obs.Disable()
	b.Cleanup(func() {
		if wasEnabled {
			obs.Enable()
		}
	})

	var sink float64
	sink = m.Predict(f) // warm up scratch state before measuring
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = m.Predict(f)
	}
	_ = sink
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func BenchmarkFig1Redundancy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) == 0 {
			b.Fatal("no redundancy rows")
		}
		if i == 0 {
			b.ReportMetric(r.Cumulative[len(r.Cumulative)-1], "%redundant")
		}
	}
}

func BenchmarkTab1WorkloadStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Tab1(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(r.Stats[0].Candidates), "JOB|Z|")
		}
	}
}

func BenchmarkTab3CostEstimation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Tab3(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range r.Rows["JOB"] {
				switch row.Method {
				case "W-D":
					b.ReportMetric(row.MAPE, "W-D_JOB_MAPE%")
				case "Optimizer":
					b.ReportMetric(row.MAPE, "Opt_JOB_MAPE%")
				}
			}
		}
	}
}

func BenchmarkFig9TopK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Curves) != 3 {
			b.Fatalf("curves for %d workloads", len(r.Curves))
		}
	}
}

func BenchmarkTab4Selection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Tab4(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range r.Rows["JOB"] {
				if row.Method == "RLView" {
					b.ReportMetric(row.Ratio, "RLView_JOB_ratio%")
				}
			}
			if opt, ok := r.OPT["JOB"]; ok {
				b.ReportMetric(opt.Ratio, "OPT_JOB_ratio%")
			}
		}
	}
}

func BenchmarkFig10Convergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			_, ivStd := experiments.Stability(r.Iter["WK1"])
			_, rvStd := experiments.Stability(r.RL["WK1"])
			b.ReportMetric(ivStd, "IterView_WK1_std")
			b.ReportMetric(rvStd, "RLView_WK1_std")
		}
	}
}

func BenchmarkTab5EndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Tab5(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.Improvement["JOB"], "JOB_improv%")
			b.ReportMetric(r.Improvement["P1"], "P1_improv%")
			b.ReportMetric(r.Improvement["P2"], "P2_improv%")
		}
	}
}

func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Ablations(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.WideDeepMAPE, "W-D_MAPE%")
			b.ReportMetric(r.WideOnlyMAPE, "wide-only_MAPE%")
			b.ReportMetric(r.RLViewFull, "RLView_$")
			b.ReportMetric(r.RLViewNoReplay, "no-replay_$")
		}
	}
}
