// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section VI). One Benchmark per artifact; each iteration reruns the full
// experiment at Quick scale and reports the experiment's headline numbers
// as custom metrics. Run with:
//
//	go test -bench=. -benchmem
package autoview_test

import (
	"math/rand"
	"testing"

	"autoview/internal/experiments"
	"autoview/internal/nn"
)

// BenchmarkNNTrainStep measures one mini-batch forward+backward+reduce
// through nn.Trainer, serial (Parallelism=1) vs parallel (NumCPU), at
// several batch sizes. Both settings produce bit-identical gradients;
// only wall-clock differs, so the serial/parallel ratio is the speedup
// of the data-parallel trainer on this machine.
func BenchmarkNNTrainStep(b *testing.B) {
	const inDim = 64
	layers := []int{inDim, 256, 256, 64, 1}
	for _, cfg := range []struct {
		name        string
		parallelism int
	}{
		{"serial", 1},
		{"parallel", 0}, // 0 → runtime.NumCPU()
	} {
		for _, batch := range []int{8, 32, 128} {
			b.Run(cfg.name+"/batch"+itoa(batch), func(b *testing.B) {
				rng := rand.New(rand.NewSource(1))
				mlp := nn.NewMLP("bench", layers, rng)
				params := mlp.Params()
				samples := make([]nn.Vec, batch)
				targets := make([]float64, batch)
				for i := range samples {
					samples[i] = make(nn.Vec, inDim)
					for j := range samples[i] {
						samples[i][j] = rng.Float64()*2 - 1
					}
					targets[i] = rng.Float64()
				}
				trainer := nn.NewTrainer(params, cfg.parallelism, func() ([]*nn.Param, nn.SampleFunc) {
					rep := mlp.ShareWeights()
					run := func(i int) float64 {
						y, back := rep.Forward(samples[i])
						d := y[0] - targets[i]
						back(nn.Vec{2 * d / float64(batch)})
						return d * d
					}
					return rep.Params(), run
				})
				opt := &nn.SGD{LR: 0.01}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					trainer.Step(batch)
					opt.Step(params)
				}
				b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "samples/s")
			})
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func BenchmarkFig1Redundancy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) == 0 {
			b.Fatal("no redundancy rows")
		}
		if i == 0 {
			b.ReportMetric(r.Cumulative[len(r.Cumulative)-1], "%redundant")
		}
	}
}

func BenchmarkTab1WorkloadStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Tab1(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(r.Stats[0].Candidates), "JOB|Z|")
		}
	}
}

func BenchmarkTab3CostEstimation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Tab3(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range r.Rows["JOB"] {
				switch row.Method {
				case "W-D":
					b.ReportMetric(row.MAPE, "W-D_JOB_MAPE%")
				case "Optimizer":
					b.ReportMetric(row.MAPE, "Opt_JOB_MAPE%")
				}
			}
		}
	}
}

func BenchmarkFig9TopK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Curves) != 3 {
			b.Fatalf("curves for %d workloads", len(r.Curves))
		}
	}
}

func BenchmarkTab4Selection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Tab4(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range r.Rows["JOB"] {
				if row.Method == "RLView" {
					b.ReportMetric(row.Ratio, "RLView_JOB_ratio%")
				}
			}
			if opt, ok := r.OPT["JOB"]; ok {
				b.ReportMetric(opt.Ratio, "OPT_JOB_ratio%")
			}
		}
	}
}

func BenchmarkFig10Convergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			_, ivStd := experiments.Stability(r.Iter["WK1"])
			_, rvStd := experiments.Stability(r.RL["WK1"])
			b.ReportMetric(ivStd, "IterView_WK1_std")
			b.ReportMetric(rvStd, "RLView_WK1_std")
		}
	}
}

func BenchmarkTab5EndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Tab5(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.Improvement["JOB"], "JOB_improv%")
			b.ReportMetric(r.Improvement["P1"], "P1_improv%")
			b.ReportMetric(r.Improvement["P2"], "P2_improv%")
		}
	}
}

func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Ablations(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.WideDeepMAPE, "W-D_MAPE%")
			b.ReportMetric(r.WideOnlyMAPE, "wide-only_MAPE%")
			b.ReportMetric(r.RLViewFull, "RLView_$")
			b.ReportMetric(r.RLViewNoReplay, "no-replay_$")
		}
	}
}
